package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"redhip/internal/serve"
)

// routedJob is the router's view of one submitted spec: which replica
// runs it now (assignments are numbered by epoch — every re-home bumps
// it, so a stale watcher or a racing re-homer can detect it lost), the
// mirrored event log clients stream from, and the terminal outcome.
type routedJob struct {
	ID   string
	Key  string
	Spec serve.Spec // normalised; re-homes forward it verbatim so the key cannot drift

	mu              sync.Mutex
	state           serve.State        //redhip:guardedby mu
	errMsg          string             //redhip:guardedby mu
	results         json.RawMessage    //redhip:guardedby mu // replica /results bytes, verbatim
	member          string             //redhip:guardedby mu // current assignment ("" while placing)
	replicaJobID    string             //redhip:guardedby mu
	epoch           int                //redhip:guardedby mu // 0 = never placed; bumps per (re)placement
	lastMirrored    int                //redhip:guardedby mu // replica event ID last mirrored this epoch
	streamCancel    context.CancelFunc //redhip:guardedby mu // aborts the current epoch's SSE follow
	rehomes         int                //redhip:guardedby mu
	submissions     int                //redhip:guardedby mu
	cancelRequested bool               //redhip:guardedby mu
	submitted       time.Time          //redhip:guardedby mu
	finished        time.Time          //redhip:guardedby mu
	log             eventLog           //redhip:guardedby mu
}

// routedData is the payload of the router-authored "routed" event.
type routedData struct {
	Replica      string `json:"replica"`
	ReplicaJobID string `json:"replica_job_id"`
}

// rehomedData is the payload of the router-authored "rehomed" event.
type rehomedData struct {
	From   string `json:"from"`
	Reason string `json:"reason"`
}

// terminalData mirrors serve's terminal event payload.
type terminalData struct {
	State serve.State `json:"state"`
	Error string      `json:"error,omitempty"`
}

// beginEpoch advances from the given epoch to the next, clearing the
// previous assignment and aborting its stream. It is the single
// arbiter between racing re-homers (the dead-member scan, a watcher
// that saw an unexpected cancel, a placement that raced a death): only
// the caller whose `from` still matches wins the right to place.
func (j *routedJob) beginEpoch(from int) (int, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.epoch != from {
		return 0, false
	}
	j.epoch++
	j.member = ""
	j.replicaJobID = ""
	j.lastMirrored = 0
	if j.streamCancel != nil {
		j.streamCancel()
		j.streamCancel = nil
	}
	return j.epoch, true
}

// assign records the epoch's placement; false if the epoch moved on.
func (j *routedJob) assign(epoch int, member, rid string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.epoch != epoch {
		return false
	}
	j.member = member
	j.replicaJobID = rid
	return true
}

// assignment returns the epoch's placement, if it is still current.
func (j *routedJob) assignment(epoch int) (member, rid string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.epoch != epoch {
		return "", "", false
	}
	return j.member, j.replicaJobID, true
}

// current snapshots (member, epoch) for the dead-member scan.
func (j *routedJob) current() (member string, epoch int, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.member, j.epoch, j.state.Terminal()
}

// setStreamCancel installs the cancel func that aborts this epoch's
// SSE follow; beginEpoch invokes it, which is what unhooks a watcher
// blocked reading from a partitioned (hung, not closed) connection.
func (j *routedJob) setStreamCancel(epoch int, cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.epoch != epoch {
		return false
	}
	j.streamCancel = cancel
	return true
}

// mirror copies one replica event into the router log with a
// router-side ID. Replica event IDs restart at 1 on every reconnect
// replay and every re-home; lastMirrored dedups within an epoch, and
// beginEpoch's reset deliberately lets the next replica's replay
// through — after a hand-off the stream narrates the job's fresh
// queued/running life on the new replica, prefixed by the "rehomed"
// marker.
func (j *routedJob) mirror(epoch int, ev serve.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.epoch != epoch || ev.ID <= j.lastMirrored {
		return
	}
	j.lastMirrored = ev.ID
	j.log.appendRawLocked(ev.Type, ev.Data, false)
}

// appendEvent publishes a router-authored non-terminal event.
func (j *routedJob) appendEvent(typ string, payload any) {
	j.mu.Lock()
	j.log.appendLocked(typ, payload, false)
	j.mu.Unlock()
}

// noteRehome counts a hand-off and publishes its marker event.
func (j *routedJob) noteRehome(from, reason string) {
	j.mu.Lock()
	j.rehomes++
	j.log.appendLocked("rehomed", rehomedData{From: from, Reason: reason}, false)
	j.mu.Unlock()
}

// requestCancel flags the job so terminal "cancelled" events are
// honoured (not treated as a fence to re-home from) and re-homers
// stand down. It returns the current placement for forwarding.
func (j *routedJob) requestCancel() (member, rid string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelRequested = true
	return j.member, j.replicaJobID
}

func (j *routedJob) isCancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRequested
}

// attach records one more deduplicated submission.
func (j *routedJob) attach() {
	j.mu.Lock()
	j.submissions++
	j.mu.Unlock()
}

// subscribe returns the replayed router log and a live channel.
func (j *routedJob) subscribe() (replay []serve.Event, live <-chan serve.Event, unsub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	replay, ch := j.log.subscribeLocked(j.state.Terminal())
	return replay, ch, func() {
		j.mu.Lock()
		j.log.unsubscribeLocked(ch)
		j.mu.Unlock()
	}
}

// RoutedStatus is the JSON shape of the router's GET /v1/jobs/{id}.
type RoutedStatus struct {
	ID           string          `json:"id"`
	Key          string          `json:"key"`
	State        serve.State     `json:"state"`
	Error        string          `json:"error,omitempty"`
	Spec         serve.Spec      `json:"spec"`
	Replica      string          `json:"replica,omitempty"`
	ReplicaJobID string          `json:"replica_job_id,omitempty"`
	Rehomes      int             `json:"rehomes"`
	Submissions  int             `json:"submissions"`
	SubmittedAt  time.Time       `json:"submitted_at"`
	FinishedAt   *time.Time      `json:"finished_at,omitempty"`
	Results      json.RawMessage `json:"results,omitempty"`
}

func (j *routedJob) status(withResults bool) RoutedStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := RoutedStatus{
		ID:           j.ID,
		Key:          j.Key,
		State:        j.state,
		Error:        j.errMsg,
		Spec:         j.Spec,
		Replica:      j.member,
		ReplicaJobID: j.replicaJobID,
		Rehomes:      j.rehomes,
		Submissions:  j.submissions,
		SubmittedAt:  j.submitted,
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if withResults && j.state == serve.StateDone {
		st.Results = j.results
	}
	return st
}

// finalizeRouted applies a routed job's terminal transition exactly
// once: state, terminal event, key release for non-reusable outcomes
// (done results stay cached under their key, the router-side dedup
// cache), and the terminal counter.
func (rt *Router) finalizeRouted(j *routedJob, state serve.State, errMsg string, results json.RawMessage) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.results = results
	j.finished = time.Now()
	if j.streamCancel != nil {
		j.streamCancel()
		j.streamCancel = nil
	}
	j.log.appendLocked(string(state), terminalData{State: state, Error: errMsg}, true)
	j.mu.Unlock()
	if state != serve.StateDone {
		rt.jobs.releaseKey(j)
	}
	rt.metrics.jobFinished(state)
	return true
}

// --- job table -----------------------------------------------------------------

// jobTable is the router's routed-job registry: ID lookup, key-level
// single-flight dedup, insertion-ordered eviction of terminal jobs.
type jobTable struct {
	mu     sync.Mutex
	byID   map[string]*routedJob //redhip:guardedby mu
	byKey  map[string]*routedJob //redhip:guardedby mu // non-terminal or done (result cache)
	order  []*routedJob          //redhip:guardedby mu // insertion order, eviction scan
	nextID int                   //redhip:guardedby mu
	max    int
}

func newJobTable(max int) *jobTable {
	return &jobTable{
		byID:  make(map[string]*routedJob),
		byKey: make(map[string]*routedJob),
		max:   max,
	}
}

// resolve returns the job owning key, creating it if absent —
// single-flight: two concurrent submissions of one spec meet here and
// share a job, exactly like serve's store. A full table evicts its
// oldest terminal job; all-live tables reject.
func (t *jobTable) resolve(key string, spec serve.Spec, now time.Time) (*routedJob, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j := t.byKey[key]; j != nil {
		j.attach()
		return j, false, nil
	}
	if len(t.byID) >= t.max && !t.evictLocked() {
		return nil, false, fmt.Errorf("cluster: job table full (%d live jobs)", len(t.byID))
	}
	t.nextID++
	j := &routedJob{
		ID:          fmt.Sprintf("r-%08d", t.nextID),
		Key:         key,
		Spec:        spec,
		state:       serve.StateQueued,
		submissions: 1,
		submitted:   now,
	}
	j.log.appendLocked("queued", terminalData{State: serve.StateQueued}, false)
	t.byID[j.ID] = j
	t.byKey[key] = j
	t.order = append(t.order, j)
	return j, true, nil
}

// evictLocked drops the oldest terminal job; false when every resident
// job is live.
func (t *jobTable) evictLocked() bool {
	for i, j := range t.order {
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if !terminal {
			continue
		}
		t.order = append(t.order[:i:i], t.order[i+1:]...)
		delete(t.byID, j.ID)
		if t.byKey[j.Key] == j {
			delete(t.byKey, j.Key)
		}
		return true
	}
	return false
}

// releaseKey unmaps a failed/cancelled job's key so the spec can be
// resubmitted fresh (mirrors serve's finishRelease semantics).
func (t *jobTable) releaseKey(j *routedJob) {
	t.mu.Lock()
	if t.byKey[j.Key] == j {
		delete(t.byKey, j.Key)
	}
	t.mu.Unlock()
}

func (t *jobTable) get(id string) *routedJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byID[id]
}

func (t *jobTable) list() []*routedJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*routedJob(nil), t.order...)
}

func (t *jobTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// --- watching ------------------------------------------------------------------

// startWatcher follows one epoch's replica-side job until it resolves.
func (rt *Router) startWatcher(j *routedJob, epoch int) {
	rt.watcherWG.Add(1)
	go func() {
		defer rt.watcherWG.Done()
		rt.watch(j, epoch)
	}()
}

// watch follows the job's replica SSE stream, reconnecting (and
// deduplicating the replay via lastMirrored) until a terminal event
// resolves the job or the epoch is taken away by a re-home. A member
// declared dead ends the watch silently: the dead-member scan owns
// re-homing, so death is handled exactly once whether the watcher or
// the prober saw it first.
func (rt *Router) watch(j *routedJob, epoch int) {
	member, rid, ok := j.assignment(epoch)
	if !ok {
		return
	}
	m := rt.members.get(member)
	if m == nil {
		return // member evicted (version upgrade); the scan re-homed its jobs
	}
	for {
		if rt.baseCtx.Err() != nil {
			return
		}
		if _, _, ok := j.assignment(epoch); !ok {
			return
		}
		done, err := rt.followStream(j, epoch, m, rid)
		if done {
			return
		}
		if m.stateNow() == MemberDead {
			return
		}
		if err != nil {
			rt.metrics.inc(&rt.metrics.watchReconnects)
		}
		select {
		case <-rt.baseCtx.Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// followStream opens one SSE connection to the replica and consumes it:
// non-terminal events mirror into the router log; a terminal event
// resolves the job (done fetches results first; an unexpected
// cancelled — a fence or a drain kill, not a client DELETE — hands the
// job to a re-home instead). Returns done=true when the job was
// resolved or this epoch is finished with; an error means the stream
// broke pre-terminal and the caller should reconnect.
func (rt *Router) followStream(j *routedJob, epoch int, m *Member, rid string) (bool, error) {
	ctx, cancel := context.WithCancel(rt.baseCtx)
	defer cancel()
	if !j.setStreamCancel(epoch, cancel) {
		return true, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.baseURLNow()+"/v1/jobs/"+rid+"/events", nil)
	if err != nil {
		return false, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The replica no longer knows the job (it restarted): the work is
		// provably gone there, so re-home rather than retry forever.
		if next, ok := j.beginEpoch(epoch); ok {
			rt.goRehome(j, next, m.Name, "replica forgot the job (restart)")
		}
		return true, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("events stream status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	for {
		ev, err := readSSE(br)
		if err != nil {
			return false, err
		}
		switch ev.Type {
		case string(serve.StateDone):
			return true, rt.completeDone(j, epoch, m, rid)
		case string(serve.StateFailed):
			var td terminalData
			_ = json.Unmarshal(ev.Data, &td)
			rt.finalizeRouted(j, serve.StateFailed, td.Error, nil)
			return true, nil
		case string(serve.StateCancelled):
			if j.isCancelRequested() {
				var td terminalData
				_ = json.Unmarshal(ev.Data, &td)
				rt.finalizeRouted(j, serve.StateCancelled, td.Error, nil)
				return true, nil
			}
			// The replica cancelled a job nobody asked it to cancel: it
			// fenced (lost its router lease) or is draining. Either way
			// the work must finish somewhere else.
			if next, ok := j.beginEpoch(epoch); ok {
				rt.goRehome(j, next, m.Name, "replica cancelled the job unexpectedly")
			}
			return true, nil
		default:
			j.mirror(epoch, ev)
		}
	}
}

// completeDone fetches the done job's results from its replica and
// finalises. The fetch retries transport errors (the result exists;
// losing it to a blip would force a pointless re-execution) but a 404
// or 409 means the replica lost or rolled back the job — re-home.
func (rt *Router) completeDone(j *routedJob, epoch int, m *Member, rid string) error {
	for attempt := 0; ; attempt++ {
		if rt.baseCtx.Err() != nil {
			return nil
		}
		if _, _, ok := j.assignment(epoch); !ok {
			return nil
		}
		body, code, err := rt.fetchResults(m, rid)
		if err == nil && code == http.StatusOK {
			if rt.finalizeRouted(j, serve.StateDone, "", body) {
				m.noteDone()
			}
			return nil
		}
		if err == nil {
			if next, ok := j.beginEpoch(epoch); ok {
				rt.goRehome(j, next, m.Name, fmt.Sprintf("results fetch got status %d", code))
			}
			return nil
		}
		select {
		case <-rt.baseCtx.Done():
			return nil
		case <-time.After(200 * time.Millisecond):
		}
	}
}

func (rt *Router) fetchResults(m *Member, rid string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(rt.baseCtx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.baseURLNow()+"/v1/jobs/"+rid+"/results", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	return body, resp.StatusCode, nil
}

// --- re-homing -----------------------------------------------------------------

// onMemberDead re-homes every non-terminal job assigned to the dead
// member. It runs in the prober goroutine; each job's re-home claims
// its epoch first, so a watcher acting on the same death (or a client
// cancel) cannot double-place.
func (rt *Router) onMemberDead(name string) {
	for _, j := range rt.jobs.list() {
		member, epoch, terminal := j.current()
		if terminal || member != name {
			continue
		}
		if next, ok := j.beginEpoch(epoch); ok {
			rt.goRehome(j, next, name, "replica "+name+" declared dead")
		}
	}
}

// goRehome launches the re-placement for an epoch already claimed via
// beginEpoch.
func (rt *Router) goRehome(j *routedJob, epoch int, from, reason string) {
	rt.metrics.inc(&rt.metrics.rehomes)
	j.noteRehome(from, reason)
	rt.watcherWG.Add(1)
	go func() {
		defer rt.watcherWG.Done()
		rt.place(j, epoch)
	}()
}

// place finds the ring's current owner for the job's key and submits
// the normalised spec there, retrying around empty rings and transient
// rejections until it lands — idempotent because the spec key is the
// identity: a replica that already holds the key (say it completed the
// job before an earlier partition healed) dedups onto its cached
// result instead of executing again, and execution itself is
// deterministic, so whichever replica ends up running the spec
// produces bit-identical results.
func (rt *Router) place(j *routedJob, epoch int) {
	for {
		if rt.baseCtx.Err() != nil {
			return
		}
		j.mu.Lock()
		lost := j.state.Terminal() || j.epoch != epoch
		cancelled := j.cancelRequested
		j.mu.Unlock()
		if lost {
			return
		}
		if cancelled {
			rt.finalizeRouted(j, serve.StateCancelled, "cancelled during re-home", nil)
			return
		}
		owner := rt.members.Ring().Owner(j.Key)
		if owner == "" {
			if !rt.sleep(200 * time.Millisecond) {
				return
			}
			continue
		}
		m := rt.members.get(owner)
		if m == nil {
			// The ring snapshot named an owner that has since died and
			// been evicted; wait for the ring to catch up and re-pick.
			if !rt.sleep(200 * time.Millisecond) {
				return
			}
			continue
		}
		rid, rej, err := rt.submitToReplica(rt.baseCtx, m, j.Spec)
		if err != nil {
			if !rt.sleep(200 * time.Millisecond) {
				return
			}
			continue
		}
		if rej != nil {
			if rej.code == http.StatusBadRequest {
				// The spec was valid once (it was admitted before); a 400
				// now is a version/config divergence — surface it.
				rt.finalizeRouted(j, serve.StateFailed, "re-home rejected: "+strings.TrimSpace(string(rej.body)), nil)
				return
			}
			delay := 500 * time.Millisecond
			if s, aerr := strconv.Atoi(rej.retryAfter); aerr == nil && s >= 1 {
				if s > 2 {
					s = 2 // clamp: re-homed work should land fast
				}
				delay = time.Duration(s) * time.Second
			}
			if !rt.sleep(delay) {
				return
			}
			continue
		}
		if !j.assign(epoch, m.Name, rid) {
			return
		}
		j.appendEvent("routed", routedData{Replica: m.Name, ReplicaJobID: rid})
		if m.stateNow() == MemberDead {
			// The owner died between the dead scan and our assign: that
			// scan may have missed this job, so claim the next epoch now.
			if next, ok := j.beginEpoch(epoch); ok {
				rt.goRehome(j, next, m.Name, "owner died during placement")
			}
			return
		}
		rt.startWatcher(j, epoch)
		return
	}
}

// sleep waits d or until shutdown; false on shutdown.
func (rt *Router) sleep(d time.Duration) bool {
	select {
	case <-rt.baseCtx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// --- SSE client ----------------------------------------------------------------

// readSSE parses one text/event-stream frame (id/event/data lines
// ended by a blank line) as serve writes them.
func readSSE(br *bufio.Reader) (serve.Event, error) {
	var ev serve.Event
	got := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if got {
				return ev, nil
			}
			continue
		}
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.ID, _ = strconv.Atoi(line[len("id: "):])
			got = true
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[len("event: "):]
			got = true
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(line[len("data: "):])
			got = true
		}
	}
}
