package cluster

import (
	"encoding/json"

	"redhip/internal/serve"
)

// eventLog is the router-side append-only progress log — the same
// replay-then-live design as serve's (that one is unexported, and the
// router's IDs must be its own: a re-homed job's replica restarts
// event numbering at 1, while the client-facing stream keeps counting
// monotonically across the hand-off).
//
// Like serve's, the log has no mutex of its own: every method carries
// the Locked suffix and requires the owning routedJob's mu held, so a
// state transition and its event land atomically.
type eventLog struct {
	events []serve.Event
	subs   map[chan serve.Event]bool
}

// appendRawLocked appends an event whose payload is already JSON (a
// mirrored replica event) and fans it out. Terminal events close every
// subscriber after delivery.
func (l *eventLog) appendRawLocked(typ string, data json.RawMessage, terminal bool) {
	if len(data) == 0 {
		data = json.RawMessage(`{}`)
	}
	ev := serve.Event{ID: len(l.events) + 1, Type: typ, Data: data}
	l.events = append(l.events, ev)
	for ch := range l.subs {
		select {
		case ch <- ev:
		default:
			// Slow subscriber: drop it rather than block the watcher. It
			// can reconnect and replay the log.
			close(ch)
			delete(l.subs, ch)
		}
	}
	if terminal {
		for ch := range l.subs {
			close(ch)
			delete(l.subs, ch)
		}
	}
}

// appendLocked marshals payload and appends it (router-originated
// events: "routed", "rehomed", terminals the router decides).
func (l *eventLog) appendLocked(typ string, payload any, terminal bool) {
	data, err := json.Marshal(payload)
	if err != nil {
		data = []byte(`{}`)
	}
	l.appendRawLocked(typ, data, terminal)
}

// subscribeLocked returns a copy of the log so far plus a live
// channel; a terminal log returns the channel already closed.
func (l *eventLog) subscribeLocked(terminal bool) (replay []serve.Event, ch chan serve.Event) {
	replay = make([]serve.Event, len(l.events))
	copy(replay, l.events)
	ch = make(chan serve.Event, 256)
	if terminal {
		close(ch)
		return replay, ch
	}
	if l.subs == nil {
		l.subs = make(map[chan serve.Event]bool)
	}
	l.subs[ch] = true
	return replay, ch
}

// unsubscribeLocked detaches a live subscriber early. Safe after a
// terminal close.
func (l *eventLog) unsubscribeLocked(ch chan serve.Event) {
	if l.subs[ch] {
		delete(l.subs, ch)
		close(ch)
	}
}
