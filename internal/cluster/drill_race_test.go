//go:build failover && race

package cluster

import "time"

// drillLease under the race detector: the instrumented replicas answer
// /readyz probes with multi-hundred-millisecond stalls when every CPU
// is busy simulating, so the plain build's 400ms lease fences healthy
// replicas over and over. 2s still fences a partitioned replica long
// before its ~14s (race-slowed) jobs can finish — the ordering the
// no-double-execution invariant needs — without tripping on scheduler
// noise.
const drillLease = 2 * time.Second
