// Package cluster scales redhip-serve past one process: a stateless
// HTTP router (cmd/redhip-router) consistent-hashes the canonical spec
// key — the same SHA-256[:8] dedup key internal/serve computes — across
// N replicas, so per-spec dedup and tracestore/snapshot-cache affinity
// fall out of the hash with no shared state. Replicas register
// themselves and are admitted to the ring only while /readyz passes;
// when a replica is marked dead its key ranges re-hash to the survivors
// and the router re-submits orphaned jobs to the new owners — safe
// because execution is idempotent by spec key: the simulation is
// deterministic, so a re-executed spec produces bit-identical results,
// and a spec that already completed elsewhere resolves from the
// router's result cache instead of running again.
//
// Like internal/serve, cluster is a serving-side package
// (analysis.ServingPackages): wall-clock reads, goroutines and
// timer-driven control flow are its normal life.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per member. 160 points per
// member keeps the largest/smallest arc ratio tight enough that sampled
// spec keys spread within ~10% of uniform across 3-8 replicas while
// the ring stays small enough to rebuild on every membership change.
const DefaultVnodes = 160

// Ring is an immutable consistent-hash ring over member names. Lookups
// hash the key to a point and walk clockwise to the first virtual
// node; membership changes build a new Ring (the router swaps it
// atomically), so a Ring itself needs no locking.
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted member names
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over the given members with vnodes virtual
// nodes each (vnodes <= 0 selects DefaultVnodes). Member order does not
// matter: placement depends only on the member *set*, so two routers
// that agree on membership agree on every key's owner.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		points:  make([]ringPoint, 0, len(members)*vnodes),
		members: append([]string(nil), members...),
	}
	sort.Strings(r.members)
	for _, m := range r.members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:   hash64(fmt.Sprintf("%s#%d", m, i)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by member name so the
		// winner is still independent of insertion order.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	// First point with hash > h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash > h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the ring's member set, sorted.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// hash64 maps a string onto the ring: FNV-1a for mixing the bytes,
// then a splitmix64 finaliser so short, similar strings (spec keys,
// "name#vnode" labels) still disperse across the full 64-bit space.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
