package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// MemberState is a replica's position in the membership state machine:
//
//	joining ──probe ok──▶ ready ◀──────────────┐
//	                        │                  │ probe ok
//	     readyz 503 "stopping"──▶ draining ────┤ (x SuccessThreshold
//	     readyz 503 other ──────▶ unready ─────┤  after dead)
//	     transport failure
//	       x FailThreshold ─────▶ dead ────────┘
//
// Only ready members are in the ring. draining and unready members are
// out of the ring for NEW work but alive: their in-flight jobs finish
// normally and are left alone. dead members additionally trigger job
// re-homing — their non-terminal jobs re-submit to the new ring owners.
type MemberState string

const (
	MemberJoining  MemberState = "joining"
	MemberReady    MemberState = "ready"
	MemberDraining MemberState = "draining"
	MemberUnready  MemberState = "unready"
	MemberDead     MemberState = "dead"
)

// inRing reports whether a member in this state receives new work.
func (s MemberState) inRing() bool { return s == MemberReady }

// Member is one registered replica. Name is the stable identity and
// immutable; the URL and version are guarded because a replica that
// restarts re-registers under its old name with a possibly new port
// and build, and the prober/watcher goroutines read them concurrently.
type Member struct {
	Name string

	mu        sync.Mutex
	baseURL   string      //redhip:guardedby mu // re-registration can move a restarted replica
	version   string      //redhip:guardedby mu
	state     MemberState //redhip:guardedby mu
	fails     int         //redhip:guardedby mu // consecutive probe transport failures
	successes int         //redhip:guardedby mu // consecutive probe passes since leaving dead
	reasons   []string    //redhip:guardedby mu // machine-readable not-ready reasons from /readyz
	lastProbe time.Time   //redhip:guardedby mu
	probes    uint64      //redhip:guardedby mu // probes sent, the jitter sequence index
	doneJobs  uint64      //redhip:guardedby mu // router-observed done results produced here
}

// stateNow returns the member's current state.
func (m *Member) stateNow() MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// baseURLNow returns the member's current base URL.
func (m *Member) baseURLNow() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.baseURL
}

// versionNow returns the member's current build version.
func (m *Member) versionNow() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// noteDone counts one done result the router cached from this member —
// the attribution that keeps cluster-wide execution accounting exact
// even after the member dies and its own counters become unreadable.
func (m *Member) noteDone() {
	m.mu.Lock()
	m.doneJobs++
	m.mu.Unlock()
}

// MemberStatus is one member's row in GET /v1/cluster/status.
type MemberStatus struct {
	Name      string      `json:"name"`
	BaseURL   string      `json:"base_url"`
	Version   string      `json:"version"`
	State     MemberState `json:"state"`
	Reasons   []string    `json:"reasons,omitempty"`
	LastProbe *time.Time  `json:"last_probe,omitempty"`
	DoneJobs  uint64      `json:"done_jobs"`
}

func (m *Member) status() MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MemberStatus{
		Name:     m.Name,
		BaseURL:  m.baseURL,
		Version:  m.version,
		State:    m.state,
		Reasons:  append([]string(nil), m.reasons...),
		DoneJobs: m.doneJobs,
	}
	if !m.lastProbe.IsZero() {
		t := m.lastProbe
		st.LastProbe = &t
	}
	return st
}

// VersionSkewError is the registration rejection for a replica whose
// build version differs from the ring's: results are only guaranteed
// bit-identical across replicas running the same code, so a mixed ring
// could hand two submissions of one spec different answers.
type VersionSkewError struct {
	Have    string // version already in the ring
	HaveWho string // a member carrying it
	Got     string // the version that tried to join
	GotWho  string
}

func (e *VersionSkewError) Error() string {
	return fmt.Sprintf("cluster: version skew: member %s runs %q but %s tried to join with %q — a mixed ring cannot guarantee bit-identical results",
		e.HaveWho, e.Have, e.GotWho, e.Got)
}

// membership owns the member registry, the health-check probers and
// the live ring. The ring is rebuilt (and swapped under mu) on every
// state transition that changes the in-ring set.
type membership struct {
	probeInterval    time.Duration
	probeTimeout     time.Duration
	failThreshold    int
	successThreshold int
	vnodes           int
	seed             uint64
	client           *http.Client
	ctx              context.Context

	// onDead, when non-nil, runs (in the prober goroutine) after a
	// member transitions to dead — the router hooks job re-homing here.
	onDead func(name string)
	// onChange runs after any in-ring set change.
	onChange func()

	mu      sync.Mutex
	members map[string]*Member //redhip:guardedby mu
	ring    *Ring              //redhip:guardedby mu
	probing map[string]bool    //redhip:guardedby mu // members with a live prober goroutine
}

func newMembership(ctx context.Context, o Options, client *http.Client) *membership {
	return &membership{
		probeInterval:    o.ProbeInterval,
		probeTimeout:     o.ProbeTimeout,
		failThreshold:    o.FailThreshold,
		successThreshold: o.SuccessThreshold,
		vnodes:           o.Vnodes,
		seed:             o.Seed,
		client:           client,
		ctx:              ctx,
		members:          make(map[string]*Member),
		ring:             NewRing(nil, o.Vnodes),
		probing:          make(map[string]bool),
	}
}

// register admits a replica to the membership (state joining; the ring
// waits for its first passing probe) and starts its prober. A name
// re-registering updates its URL/version in place — replicas re-announce
// after losing router contact, and a restarted replica reuses its name.
// Version skew is refused: if any non-dead member runs a different
// version, the newcomer is rejected; if only DEAD members carry the old
// version they are evicted instead (a rolling upgrade replacing crashed
// replicas must not be wedged by their ghosts — and should one such
// ghost actually be alive, its next re-registration gets the same skew
// check against the new ring).
func (ms *membership) register(name, baseURL, vers string) (*Member, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	var evict []string
	for _, m := range ms.members {
		mv := m.versionNow()
		if m.Name == name || mv == vers {
			continue
		}
		if m.stateNow() == MemberDead {
			evict = append(evict, m.Name)
			continue
		}
		return nil, &VersionSkewError{Have: mv, HaveWho: m.Name, Got: vers, GotWho: name}
	}
	for _, stale := range evict {
		// Clearing the probing flag lets a re-registration of this name
		// start a fresh prober; the evicted member's own prober notices
		// it is detached (members[name] no longer points at it) and
		// exits on its next wake-up.
		delete(ms.members, stale)
		delete(ms.probing, stale)
	}
	m := ms.members[name]
	if m == nil {
		m = &Member{Name: name, baseURL: baseURL, version: vers, state: MemberJoining}
		ms.members[name] = m
	} else {
		m.mu.Lock()
		m.baseURL = baseURL
		m.version = vers
		if m.state == MemberDead {
			m.state = MemberJoining
			m.fails, m.successes = 0, 0
		}
		m.mu.Unlock()
	}
	ms.rebuildRingLocked()
	if !ms.probing[name] {
		ms.probing[name] = true
		go ms.probeLoop(m)
	}
	return m, nil
}

// rebuildRingLocked recomputes the ring from the current in-ring set.
func (ms *membership) rebuildRingLocked() {
	var ready []string
	for _, m := range ms.members {
		if m.stateNow().inRing() {
			ready = append(ready, m.Name)
		}
	}
	ms.ring = NewRing(ready, ms.vnodes)
}

// Ring returns the current ring snapshot.
func (ms *membership) Ring() *Ring {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.ring
}

// get looks a member up by name.
func (ms *membership) get(name string) *Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.members[name]
}

// list snapshots all members sorted by name.
func (ms *membership) list() []*Member {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([]*Member, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// readyzBody is the JSON shape of a replica's /readyz response — the
// machine-readable reasons let the router distinguish a draining
// replica (stop routing, let jobs finish) from a shedding one (stop
// routing, jobs fine) from a dead one (re-home jobs), which a bare
// status code cannot.
type readyzBody struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

// probeLoop health-checks one member forever (the router's lifetime):
// a deterministic, jittered interval — splitmix64 over (seed, member,
// probe index) scales the base interval into [0.75, 1.25) so a fleet
// of probers never phase-locks, yet a replayed drill probes at
// identical offsets. Probes continue in every state: dead members heal
// back to ready after SuccessThreshold consecutive passes.
func (ms *membership) probeLoop(m *Member) {
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		m.mu.Lock()
		seq := m.probes
		m.probes++
		m.mu.Unlock()
		jitter := 0.75 + 0.5*unitFloat(ms.seed, m.Name, seq)
		timer.Reset(time.Duration(float64(ms.probeInterval) * jitter))
		select {
		case <-ms.ctx.Done():
			return
		case <-timer.C:
		}
		ms.mu.Lock()
		alive := ms.members[m.Name] == m
		ms.mu.Unlock()
		if !alive {
			// register() evicted this member; a namesake that re-registers
			// gets its own Member and prober, so this loop must die rather
			// than probe a detached ghost forever.
			return
		}
		ms.probe(m)
	}
}

// probe runs one health check and applies its verdict to the state
// machine, rebuilding the ring and firing hooks on transitions.
func (ms *membership) probe(m *Member) {
	ctx, cancel := context.WithTimeout(ms.ctx, ms.probeTimeout)
	verdict, reasons := ms.checkReadyz(ctx, m)
	cancel()

	m.mu.Lock()
	old := m.state
	m.lastProbe = time.Now()
	switch verdict {
	case probePass:
		m.fails = 0
		m.reasons = nil
		if old == MemberDead {
			m.successes++
			if m.successes >= ms.successThreshold {
				m.state = MemberReady
			}
		} else {
			m.successes = 0
			m.state = MemberReady
		}
	case probeDraining, probeUnready:
		// The replica answered: it is alive but refusing new work. Not a
		// step toward dead — and an answer from a dead-marked member is
		// recovery in progress, so it resets the failure streak too.
		m.fails = 0
		m.reasons = reasons
		if old != MemberDead {
			if verdict == probeDraining {
				m.state = MemberDraining
			} else {
				m.state = MemberUnready
			}
		}
	case probeFail:
		m.successes = 0
		m.fails++
		m.reasons = reasons
		if m.fails >= ms.failThreshold {
			m.state = MemberDead
		}
	}
	newState := m.state
	m.mu.Unlock()

	if newState == old {
		return
	}
	ms.mu.Lock()
	alive := ms.members[m.Name] == m
	if alive {
		ms.rebuildRingLocked()
	}
	ms.mu.Unlock()
	if !alive {
		// Evicted between the probe and its verdict: a detached ghost
		// must not fire hooks — onDead would re-home jobs owned by the
		// live namesake member.
		return
	}
	if ms.onChange != nil {
		ms.onChange()
	}
	if newState == MemberDead && ms.onDead != nil {
		ms.onDead(m.Name)
	}
}

type probeVerdict int

const (
	probePass probeVerdict = iota
	probeDraining
	probeUnready
	probeFail
)

// checkReadyz GETs the member's /readyz, marking the request as a
// router probe (the header renews the replica's lease) and classifying
// the answer. Transport errors and non-200/503 codes are failures; a
// 503 whose body names "stopping" is draining; any other 503 is
// unready.
func (ms *membership) checkReadyz(ctx context.Context, m *Member) (probeVerdict, []string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.baseURLNow()+"/readyz", nil)
	if err != nil {
		return probeFail, []string{"probe: " + err.Error()}
	}
	req.Header.Set(ProbeHeader, "1")
	resp, err := ms.client.Do(req)
	if err != nil {
		return probeFail, []string{"probe: " + err.Error()}
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	switch resp.StatusCode {
	case http.StatusOK:
		return probePass, nil
	case http.StatusServiceUnavailable:
		var rb readyzBody
		if err := json.Unmarshal(body, &rb); err != nil {
			return probeUnready, []string{"unparseable readyz body"}
		}
		for _, r := range rb.Reasons {
			if r == "stopping" {
				return probeDraining, rb.Reasons
			}
		}
		return probeUnready, rb.Reasons
	default:
		return probeFail, []string{fmt.Sprintf("probe: readyz status %d", resp.StatusCode)}
	}
}

// unitFloat hashes (seed, name, seq) into [0, 1) deterministically —
// the probe-jitter source.
func unitFloat(seed uint64, name string, seq uint64) float64 {
	h := seed ^ hash64(name)
	z := h ^ (seq * 0x9e3779b97f4a7c15)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
