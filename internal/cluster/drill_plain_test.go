//go:build failover && !race

package cluster

import "time"

// drillLease without the race detector: short enough that the fence
// window (two leases) adds well under a second to the drill, long
// enough that routine probe jitter never trips it.
const drillLease = 400 * time.Millisecond
