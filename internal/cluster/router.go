package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"redhip/internal/serve"
	"redhip/internal/version"
)

// ProbeHeader marks router→replica health probes; replicas treat a
// /readyz request carrying it as a lease renewal (serve/cluster.go).
const ProbeHeader = serve.RouterProbeHeader

// ReplicaHeader is the router's response header naming the replica a
// job is (or would be) placed on — the failover drill asserts on it,
// and loadgen accounts per-replica traffic with it.
const ReplicaHeader = "X-RedHiP-Replica"

// Options configure a Router. Zero values pick production-lean
// defaults; the failover drill shrinks every interval.
type Options struct {
	// Seed feeds the deterministic probe jitter (default 1).
	Seed uint64
	// ProbeInterval is the base health-check period per member (default
	// 1s); actual gaps are jittered into [0.75, 1.25) of it.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (default ProbeInterval/2).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe transport failures that
	// declare a member dead (default 3). Dead declaration therefore
	// takes at least FailThreshold x 0.75 x ProbeInterval — replicas
	// must fence on a shorter lease, so the router advertises this
	// floor in every registration response (dead_after_ms) for them to
	// derive it from.
	FailThreshold int
	// SuccessThreshold is the consecutive probe passes a dead member
	// needs to rejoin the ring (default 2).
	SuccessThreshold int
	// Vnodes is the ring's virtual-node count per member (default
	// DefaultVnodes).
	Vnodes int
	// MaxJobs bounds resident routed jobs; terminal jobs evict oldest
	// first when the table is full (default 1024).
	MaxJobs int
	// Transport overrides the HTTP transport for every router→replica
	// request — probes, submissions, streams. The failover drill
	// injects one that can cut individual replicas off, simulating
	// kills and partitions in-process.
	Transport http.RoundTripper
}

func (o *Options) fill() error {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeInterval < 0 {
		return fmt.Errorf("cluster: ProbeInterval must be > 0, got %s", o.ProbeInterval)
	}
	if o.ProbeTimeout == 0 {
		o.ProbeTimeout = o.ProbeInterval / 2
	}
	if o.ProbeTimeout < 0 {
		return fmt.Errorf("cluster: ProbeTimeout must be > 0, got %s", o.ProbeTimeout)
	}
	if o.FailThreshold == 0 {
		o.FailThreshold = 3
	}
	if o.FailThreshold < 1 {
		return fmt.Errorf("cluster: FailThreshold must be >= 1, got %d", o.FailThreshold)
	}
	if o.SuccessThreshold == 0 {
		o.SuccessThreshold = 2
	}
	if o.SuccessThreshold < 1 {
		return fmt.Errorf("cluster: SuccessThreshold must be >= 1, got %d", o.SuccessThreshold)
	}
	if o.Vnodes == 0 {
		o.Vnodes = DefaultVnodes
	}
	if o.Vnodes < 1 {
		return fmt.Errorf("cluster: Vnodes must be >= 1, got %d", o.Vnodes)
	}
	if o.MaxJobs == 0 {
		o.MaxJobs = 1024
	}
	if o.MaxJobs < 1 {
		return fmt.Errorf("cluster: MaxJobs must be >= 1, got %d", o.MaxJobs)
	}
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	return nil
}

// Router is the redhip-router core: registration, health-gated ring
// membership, consistent-hash job placement, SSE mirroring and
// re-homing, independent of the listener (cmd/redhip-router binds it
// to an http.Server; tests drive Handler directly).
type Router struct {
	opts      Options
	client    *http.Client // no global timeout: SSE streams live long
	members   *membership
	jobs      *jobTable
	metrics   *routerMetrics
	mux       *http.ServeMux
	baseCtx   context.Context
	baseStop  context.CancelFunc
	watcherWG sync.WaitGroup
}

// New builds a Router. Probers start as replicas register.
func New(opts Options) (*Router, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	rt := &Router{
		opts:     opts,
		client:   &http.Client{Transport: opts.Transport},
		jobs:     newJobTable(opts.MaxJobs),
		metrics:  &routerMetrics{},
		mux:      http.NewServeMux(),
		baseCtx:  ctx,
		baseStop: stop,
	}
	rt.members = newMembership(ctx, opts, rt.client)
	rt.members.onDead = rt.onMemberDead
	rt.routes()
	return rt, nil
}

// Handler returns the HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Shutdown stops probers and job watchers; it does not contact
// replicas (their jobs keep running — a router restart must not cancel
// cluster work).
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.baseStop()
	done := make(chan struct{})
	go func() {
		rt.watcherWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (rt *Router) routes() {
	rt.mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	rt.mux.HandleFunc("GET /v1/jobs", rt.handleList)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.handleGet)
	rt.mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleCancel)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleEvents)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/results", rt.handleResults)
	rt.mux.HandleFunc("POST /v1/cluster/register", rt.handleRegister)
	rt.mux.HandleFunc("GET /v1/cluster/status", rt.handleClusterStatus)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
}

// --- submission ---------------------------------------------------------------

// submitResponse mirrors serve's POST /v1/jobs body, so clients speak
// one dialect whether they hit a replica or the router.
type submitResponse struct {
	ID      string      `json:"id"`
	Key     string      `json:"key"`
	State   serve.State `json:"state"`
	Deduped bool        `json:"deduped"`
	Status  string      `json:"status_url"`
	Events  string      `json:"events_url"`
}

func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec serve.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid job spec: %v", err))
		return
	}
	// Normalise here with the same code the replica runs, so the key the
	// ring places equals the key the replica dedups on; the normalised
	// spec is what gets forwarded (and re-forwarded on a re-home).
	norm, err := spec.Normalized()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := norm.CanonicalKey()

	j, created, err := rt.jobs.resolve(key, norm, time.Now())
	if err != nil {
		rt.metrics.inc(&rt.metrics.rejected)
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	rt.metrics.inc(&rt.metrics.submitted)
	if !created {
		rt.metrics.inc(&rt.metrics.deduped)
		rt.respondSubmit(w, j, true)
		return
	}

	owner := rt.members.Ring().Owner(key)
	if owner == "" {
		rt.finalizeRouted(j, serve.StateCancelled, "not admitted: no ready replicas", nil)
		rt.metrics.inc(&rt.metrics.rejected)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "no ready replicas")
		return
	}
	m := rt.members.get(owner)
	if m == nil {
		// The owner left the ring snapshot's member set (died and was
		// evicted) between the Owner lookup and here — same answer as an
		// empty ring.
		rt.finalizeRouted(j, serve.StateCancelled, "not admitted: no ready replicas", nil)
		rt.metrics.inc(&rt.metrics.rejected)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "no ready replicas")
		return
	}
	epoch, ok := j.beginEpoch(0)
	if !ok {
		rt.respondSubmit(w, j, true) // cancelled underfoot; report as-is
		return
	}
	rid, rej, err := rt.submitToReplica(r.Context(), m, norm)
	if err != nil {
		rt.finalizeRouted(j, serve.StateCancelled, "not admitted: replica unreachable: "+err.Error(), nil)
		w.Header().Set(ReplicaHeader, m.Name)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusBadGateway, "replica "+m.Name+" unreachable: "+err.Error())
		return
	}
	if rej != nil {
		// The replica said no — forward its verdict verbatim, its
		// Retry-After included (satellite: never synthesize one the
		// replica already computed from its own queue state).
		rt.finalizeRouted(j, serve.StateCancelled, "not admitted: replica rejected", nil)
		rt.metrics.inc(&rt.metrics.proxiedRejections)
		rt.forwardRejection(w, m.Name, rej)
		return
	}
	if !j.assign(epoch, m.Name, rid) {
		// Epoch moved on (cancel raced in); nothing to watch, but the
		// client still gets the job's current status.
		rt.respondSubmit(w, j, true)
		return
	}
	j.appendEvent("routed", routedData{Replica: m.Name, ReplicaJobID: rid})
	// The placement scan in onMemberDead matches on the assigned member
	// name; if the member died between our ring read and the assign, the
	// scan may have run before the assignment existed — re-home here.
	if m.stateNow() == MemberDead {
		if next, claimed := j.beginEpoch(epoch); claimed {
			rt.goRehome(j, next, m.Name, "owner died during placement")
		}
	} else {
		rt.startWatcher(j, epoch)
	}
	rt.respondSubmit(w, j, false)
}

func (rt *Router) respondSubmit(w http.ResponseWriter, j *routedJob, deduped bool) {
	st := j.status(false)
	if st.Replica != "" {
		w.Header().Set(ReplicaHeader, st.Replica)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, submitResponse{
		ID:      j.ID,
		Key:     j.Key,
		State:   st.State,
		Deduped: deduped,
		Status:  "/v1/jobs/" + j.ID,
		Events:  "/v1/jobs/" + j.ID + "/events",
	})
}

// replicaRejection is a replica's non-202 answer to a job submission,
// held for verbatim forwarding.
type replicaRejection struct {
	code       int
	retryAfter string
	body       []byte
}

// submitToReplica POSTs a normalised spec to one member. Exactly one
// of the three returns is set: the replica job ID on 202, a rejection
// to forward, or a transport error.
func (rt *Router) submitToReplica(ctx context.Context, m *Member, spec serve.Spec) (string, *replicaRejection, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return "", nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.baseURLNow()+"/v1/jobs", strings.NewReader(string(payload)))
	if err != nil {
		return "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusAccepted {
		return "", &replicaRejection{
			code:       resp.StatusCode,
			retryAfter: resp.Header.Get("Retry-After"),
			body:       body,
		}, nil
	}
	var sr submitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return "", nil, fmt.Errorf("unparseable submit response: %w", err)
	}
	return sr.ID, nil, nil
}

func (rt *Router) forwardRejection(w http.ResponseWriter, replica string, rej *replicaRejection) {
	w.Header().Set(ReplicaHeader, replica)
	if rej.retryAfter != "" {
		w.Header().Set("Retry-After", rej.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rej.code)
	_, _ = w.Write(rej.body)
}

// --- status / events / results -------------------------------------------------

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := rt.jobs.list()
	out := make([]RoutedStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.status(false)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, out)
}

func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	j := rt.jobs.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status(r.URL.Query().Get("results") != "false")
	if st.Replica != "" {
		w.Header().Set(ReplicaHeader, st.Replica)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, st)
}

func (rt *Router) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := rt.jobs.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	member, rid := j.requestCancel()
	if member != "" && rid != "" {
		if m := rt.members.get(member); m != nil {
			// Best effort: an unreachable replica's jobs die with its
			// lease, and the cancelRequested flag stops any re-home.
			ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
			req, err := http.NewRequestWithContext(ctx, http.MethodDelete, m.baseURLNow()+"/v1/jobs/"+rid, nil)
			if err == nil {
				if resp, derr := rt.client.Do(req); derr == nil {
					resp.Body.Close()
				}
			}
			cancel()
		}
	}
	st := j.status(false)
	if st.Replica != "" {
		w.Header().Set(ReplicaHeader, st.Replica)
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, st)
}

func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := rt.jobs.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	replay, live, unsub := j.subscribe()
	defer unsub()
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleResults re-serves the executing replica's /results bytes
// verbatim — the drill diffs this output against a single-replica
// reference, so the router must not re-encode.
func (rt *Router) handleResults(w http.ResponseWriter, r *http.Request) {
	j := rt.jobs.get(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status(true)
	if st.State != serve.StateDone {
		httpError(w, http.StatusConflict, fmt.Sprintf("job is %s, results exist only for done jobs", st.State))
		return
	}
	if st.Replica != "" {
		w.Header().Set(ReplicaHeader, st.Replica)
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(st.Results)
}

// writeSSE renders one event in text/event-stream framing.
func writeSSE(w http.ResponseWriter, ev serve.Event) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data)
}

// --- membership endpoints ------------------------------------------------------

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var body serve.RegistrationBody
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("invalid registration: %v", err))
		return
	}
	if body.Name == "" || body.BaseURL == "" || body.Version == "" {
		httpError(w, http.StatusBadRequest, "registration requires name, base_url and version")
		return
	}
	m, err := rt.members.register(body.Name, strings.TrimSuffix(body.BaseURL, "/"), body.Version)
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, registerResponse{
		MemberStatus:    m.status(),
		DeadAfterMillis: rt.deadAfterFloor().Milliseconds(),
	})
}

// registerResponse is the router's registration ack: the member row
// plus the dead-declaration floor — the minimum time from a replica's
// last successful probe to its dead declaration (FailThreshold
// consecutive failed probes at >= 0.75 x ProbeInterval spacing).
// Replicas derive (auto) or sanity-check (explicit) their fencing
// lease from it; keeping lease < floor guarantees a partitioned
// replica fences before the router re-homes its jobs, which is what
// makes re-homing safe against double execution.
type registerResponse struct {
	MemberStatus
	DeadAfterMillis int64 `json:"dead_after_ms"`
}

// deadAfterFloor computes the advertised minimum dead-declaration
// delay from the probe schedule.
func (rt *Router) deadAfterFloor() time.Duration {
	return time.Duration(rt.opts.FailThreshold) * rt.opts.ProbeInterval * 3 / 4
}

// clusterStatus is the JSON body of GET /v1/cluster/status.
type clusterStatus struct {
	RingSize int            `json:"ring_size"`
	Members  []MemberStatus `json:"members"`
}

func (rt *Router) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	members := rt.members.list()
	out := clusterStatus{RingSize: rt.members.Ring().Size()}
	for _, m := range members {
		out.Members = append(out.Members, m.status())
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, out)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}{Status: "ok", Version: version.String()})
}

// handleReadyz: the router is ready while at least one replica is in
// the ring — with zero it can only reject submissions.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	size := rt.members.Ring().Size()
	resp := struct {
		Ready   bool     `json:"ready"`
		Reasons []string `json:"reasons,omitempty"`
	}{Ready: size > 0}
	code := http.StatusOK
	if !resp.Ready {
		code = http.StatusServiceUnavailable
		resp.Reasons = []string{"no_ready_replicas"}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, resp)
}

// --- metrics -------------------------------------------------------------------

// routerMetrics is the router's instrumentation: monotone counters;
// member/job gauges read live at render time.
type routerMetrics struct {
	mu                sync.Mutex
	submitted         uint64 // POST /v1/jobs accepted (new or deduped)
	deduped           uint64 // submissions attached to an existing routed job
	rejected          uint64 // submissions the router itself refused
	proxiedRejections uint64 // replica 4xx/5xx verdicts forwarded verbatim
	rehomes           uint64 // jobs re-submitted after losing their replica
	watchReconnects   uint64 // watcher stream reconnects (same replica)
	done              uint64 // routed jobs reaching done
	failed            uint64 // routed jobs reaching failed
	cancelled         uint64 // routed jobs reaching cancelled
}

func (m *routerMetrics) inc(field *uint64) {
	m.mu.Lock()
	*field++
	m.mu.Unlock()
}

// routerMetricsSnapshot copies the counter block for rendering.
type routerMetricsSnapshot struct {
	submitted, deduped, rejected, proxiedRejections uint64
	rehomes, watchReconnects                        uint64
	done, failed, cancelled                         uint64
}

func (m *routerMetrics) snapshot() routerMetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return routerMetricsSnapshot{
		submitted: m.submitted, deduped: m.deduped,
		rejected: m.rejected, proxiedRejections: m.proxiedRejections,
		rehomes: m.rehomes, watchReconnects: m.watchReconnects,
		done: m.done, failed: m.failed, cancelled: m.cancelled,
	}
}

func (m *routerMetrics) jobFinished(s serve.State) {
	switch s {
	case serve.StateDone:
		m.inc(&m.done)
	case serve.StateFailed:
		m.inc(&m.failed)
	case serve.StateCancelled:
		m.inc(&m.cancelled)
	}
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := rt.metrics.snapshot()
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("redhip_router_jobs_submitted_total", "Accepted job submissions (new plus deduplicated).", snap.submitted)
	counter("redhip_router_jobs_deduped_total", "Submissions attached to an existing routed job by spec key.", snap.deduped)
	counter("redhip_router_jobs_rejected_total", "Submissions the router refused (no replicas, table full).", snap.rejected)
	counter("redhip_router_proxied_rejections_total", "Replica rejections (429/503/400) forwarded verbatim.", snap.proxiedRejections)
	counter("redhip_router_rehomes_total", "Jobs re-submitted to a new owner after losing their replica.", snap.rehomes)
	counter("redhip_router_watch_reconnects_total", "Watcher SSE reconnects to the same replica.", snap.watchReconnects)
	counter("redhip_router_jobs_done_total", "Routed jobs that finished successfully.", snap.done)
	counter("redhip_router_jobs_failed_total", "Routed jobs that finished with an error.", snap.failed)
	counter("redhip_router_jobs_cancelled_total", "Routed jobs cancelled.", snap.cancelled)

	byState := make(map[MemberState]int)
	for _, mem := range rt.members.list() {
		byState[mem.stateNow()]++
	}
	states := make([]string, 0, len(byState))
	for st := range byState {
		states = append(states, string(st))
	}
	sort.Strings(states)
	const mn = "redhip_router_members"
	fmt.Fprintf(w, "# HELP %s Registered replicas by membership state.\n# TYPE %s gauge\n", mn, mn)
	for _, st := range states {
		fmt.Fprintf(w, "%s{state=%q} %d\n", mn, st, byState[MemberState(st)])
	}
	gauge("redhip_router_ring_size", "Replicas currently in the ring (ready).", float64(rt.members.Ring().Size()))
	gauge("redhip_router_jobs_tracked", "Routed jobs resident in the table (all states).", float64(rt.jobs.size()))
}

// --- small helpers -------------------------------------------------------------

type errorBody struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	writeJSON(w, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}
