package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redhip/internal/memaddr"
)

func mustNew(t *testing.T, g Geometry) *Cache {
	t.Helper()
	c, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallCache(t *testing.T) *Cache {
	// 4 sets x 2 ways x 64B = 512B
	return mustNew(t, Geometry{Name: "L1", SizeBytes: 512, Ways: 2, Banks: 1})
}

func TestGeometryValidation(t *testing.T) {
	good := []Geometry{
		{Name: "a", SizeBytes: 32 * 1024, Ways: 4, Banks: 1},
		{Name: "b", SizeBytes: 64 * 1024 * 1024, Ways: 16, Banks: 4},
		{Name: "c", SizeBytes: 64, Ways: 1, Banks: 1}, // 1 set direct-mapped
	}
	for _, g := range good {
		if _, err := New(g); err != nil {
			t.Errorf("New(%+v): %v", g, err)
		}
	}
	bad := []Geometry{
		{Name: "w0", SizeBytes: 1024, Ways: 0, Banks: 1},
		{Name: "b0", SizeBytes: 1024, Ways: 2, Banks: 0},
		{Name: "sz", SizeBytes: 1000, Ways: 2, Banks: 1},
		{Name: "np2", SizeBytes: 3 * 64 * 2, Ways: 2, Banks: 1}, // 3 sets
		{Name: "z", SizeBytes: 0, Ways: 2, Banks: 1},
	}
	for _, g := range bad {
		if _, err := New(g); err == nil {
			t.Errorf("New(%+v) accepted invalid geometry", g)
		}
	}
}

func TestPaperGeometries(t *testing.T) {
	// Table I geometries must all validate with the right set counts.
	cases := []struct {
		g    Geometry
		sets int
	}{
		{Geometry{Name: "L1", SizeBytes: 32 << 10, Ways: 4, Banks: 1}, 128},
		{Geometry{Name: "L2", SizeBytes: 256 << 10, Ways: 8, Banks: 1}, 512},
		{Geometry{Name: "L3", SizeBytes: 4 << 20, Ways: 16, Banks: 1}, 4096},
		{Geometry{Name: "L4", SizeBytes: 64 << 20, Ways: 16, Banks: 4}, 65536},
	}
	for _, c := range cases {
		ch, err := New(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		if ch.NumSets() != c.sets {
			t.Errorf("%s: %d sets, want %d", c.g.Name, ch.NumSets(), c.sets)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache(t)
	b := memaddr.Addr(0x40).Block()
	if c.Lookup(b) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(b)
	if !c.Lookup(b) {
		t.Fatal("miss after fill")
	}
	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := smallCache(t) // 4 sets, 2 ways
	// Three blocks mapping to set 0: block addresses 0, 4, 8 (set = block & 3).
	b0, b1, b2 := memaddr.Addr(0), memaddr.Addr(4), memaddr.Addr(8)
	c.Fill(b0)
	c.Fill(b1)
	c.Lookup(b0) // b0 is now MRU; b1 is LRU
	ev, was := c.Fill(b2)
	if !was || ev != b1 {
		t.Fatalf("evicted %v (%v), want %v", ev, was, b1)
	}
	if !c.Contains(b0) || c.Contains(b1) || !c.Contains(b2) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestFillExistingRefreshesLRU(t *testing.T) {
	c := smallCache(t)
	b0, b1, b2 := memaddr.Addr(0), memaddr.Addr(4), memaddr.Addr(8)
	c.Fill(b0)
	c.Fill(b1)
	// Re-fill b0: must not duplicate, must refresh recency.
	if _, was := c.Fill(b0); was {
		t.Fatal("re-fill evicted")
	}
	ev, was := c.Fill(b2)
	if !was || ev != b1 {
		t.Fatalf("evicted %v, want %v (b0 should have been refreshed)", ev, b1)
	}
	if c.ValidBlocks() != 2 {
		t.Fatalf("ValidBlocks = %d, want 2", c.ValidBlocks())
	}
}

func TestFillPrefersInvalidWay(t *testing.T) {
	c := smallCache(t)
	b0, b1, b2 := memaddr.Addr(0), memaddr.Addr(4), memaddr.Addr(8)
	c.Fill(b0)
	c.Fill(b1)
	c.Invalidate(b0)
	if ev, was := c.Fill(b2); was {
		t.Fatalf("fill evicted %v despite an invalid way", ev)
	}
	if !c.Contains(b1) || !c.Contains(b2) {
		t.Fatal("wrong residency")
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache(t)
	b := memaddr.Addr(12)
	if c.Invalidate(b) {
		t.Fatal("invalidate of absent block returned true")
	}
	c.Fill(b)
	if !c.Invalidate(b) {
		t.Fatal("invalidate of present block returned false")
	}
	if c.Contains(b) {
		t.Fatal("block still present after invalidate")
	}
	if c.Stats().Invalidates != 1 {
		t.Fatalf("Invalidates = %d", c.Stats().Invalidates)
	}
}

func TestContainsDoesNotTouchState(t *testing.T) {
	c := smallCache(t)
	b0, b1, b2 := memaddr.Addr(0), memaddr.Addr(4), memaddr.Addr(8)
	c.Fill(b0)
	c.Fill(b1) // b0 LRU
	for i := 0; i < 10; i++ {
		c.Contains(b0) // must NOT refresh b0
	}
	if ev, _ := c.Fill(b2); ev != b0 {
		t.Fatalf("evicted %v; Contains must not update LRU", ev)
	}
	s := c.Stats()
	if s.Lookups != 0 {
		t.Fatalf("Contains counted as lookup: %+v", s)
	}
}

func TestEvictedAddressRoundTrip(t *testing.T) {
	// The evicted block address must be exactly reconstructible.
	f := func(raw uint64) bool {
		c, _ := New(Geometry{Name: "t", SizeBytes: 1 << 14, Ways: 1, Banks: 1})
		b := memaddr.Addr(raw).Block()
		c.Fill(b)
		conflict := b ^ (1 << 40) // same set (low bits unchanged), different tag
		ev, was := c.Fill(conflict)
		return was && ev == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := mustNew(t, Geometry{Name: "t", SizeBytes: 4096, Ways: 4, Banks: 1}) // 64 blocks
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Fill(memaddr.Addr(rng.Uint64()).Block())
		if v := c.ValidBlocks(); v > 64 {
			t.Fatalf("ValidBlocks = %d > capacity 64", v)
		}
	}
	if v := c.ValidBlocks(); v != 64 {
		t.Fatalf("cache not full after 10000 fills: %d/64", v)
	}
}

func TestFillsEqualEvictionsPlusResidency(t *testing.T) {
	// Invariant: fills = evictions + invalidations-that-happened-after-fill
	// + still-resident. With no invalidations: fills - evictions = resident.
	c := mustNew(t, Geometry{Name: "t", SizeBytes: 8192, Ways: 2, Banks: 1})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		c.Fill(memaddr.Addr(rng.Uint64() % (1 << 20)).Block())
	}
	s := c.Stats()
	if int(s.Fills-s.Evictions) != c.ValidBlocks() {
		t.Fatalf("fills %d - evictions %d != resident %d", s.Fills, s.Evictions, c.ValidBlocks())
	}
}

func TestTagsInSet(t *testing.T) {
	c := mustNew(t, Geometry{Name: "t", SizeBytes: 512, Ways: 2, Banks: 1}) // 4 sets
	// Two blocks in set 1, with distinct tags 5 and 9.
	b1 := memaddr.BlockFromSetTag(1, 5, c.SetBits())
	b2 := memaddr.BlockFromSetTag(1, 9, c.SetBits())
	c.Fill(b1)
	c.Fill(b2)
	tags := c.TagsInSet(1, nil)
	if len(tags) != 2 {
		t.Fatalf("got %d tags", len(tags))
	}
	seen := map[uint64]bool{tags[0]: true, tags[1]: true}
	if !seen[5] || !seen[9] {
		t.Fatalf("tags %v, want {5,9}", tags)
	}
	if got := c.TagsInSet(0, nil); len(got) != 0 {
		t.Fatalf("set 0 should be empty, got %v", got)
	}
}

func TestForEachBlock(t *testing.T) {
	c := smallCache(t)
	want := map[memaddr.Addr]bool{}
	for _, b := range []memaddr.Addr{0, 1, 2, 3, 4, 5} {
		c.Fill(b)
		want[b] = true
	}
	got := map[memaddr.Addr]bool{}
	c.ForEachBlock(func(b memaddr.Addr) { got[b] = true })
	// 4 sets x 2 ways: blocks 0..5 map to sets 0,1,2,3,0,1 — all fit.
	if len(got) != 6 {
		t.Fatalf("ForEachBlock visited %d blocks, want 6", len(got))
	}
	for b := range want {
		if !got[b] {
			t.Errorf("block %v missing", b)
		}
	}
}

func TestFlush(t *testing.T) {
	c := smallCache(t)
	c.Fill(0)
	c.Fill(1)
	c.Flush()
	if c.ValidBlocks() != 0 {
		t.Fatal("flush left valid blocks")
	}
	if c.Stats().Fills != 2 {
		t.Fatal("flush cleared counters")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
	s = Stats{Lookups: 10, Hits: 7}
	if s.HitRate() != 0.7 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	c := mustNew(t, Geometry{Name: "dm", SizeBytes: 256, Ways: 1, Banks: 1}) // 4 sets DM
	b := memaddr.Addr(0)
	conflict := memaddr.Addr(4) // same set
	c.Fill(b)
	c.Fill(conflict)
	if c.Contains(b) {
		t.Fatal("direct-mapped cache kept both conflicting blocks")
	}
	if !c.Contains(conflict) {
		t.Fatal("conflicting block missing")
	}
}

func TestLookupUpdatesLRUProperty(t *testing.T) {
	// Property: in a 2-way set, after filling A and B then accessing A,
	// filling C always evicts B.
	f := func(rawA, rawB, rawC uint64) bool {
		c, _ := New(Geometry{Name: "t", SizeBytes: 1 << 13, Ways: 2, Banks: 1})
		setBits := c.SetBits()
		// Force all three into the same set with distinct tags.
		a := memaddr.BlockFromSetTag(3, rawA%1000, setBits)
		b := memaddr.BlockFromSetTag(3, rawA%1000+1+rawB%1000, setBits)
		cc := memaddr.BlockFromSetTag(3, rawA%1000+2002+rawC%1000, setBits)
		c.Fill(a)
		c.Fill(b)
		c.Lookup(a)
		ev, was := c.Fill(cc)
		return was && ev == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
