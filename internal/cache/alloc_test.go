package cache

import (
	"testing"

	"redhip/internal/memaddr"
)

// TestHotPathAllocationFree pins the zero-allocation contract of the
// per-reference cache operations. Lookup, Contains, Fill and Invalidate
// run once per simulated reference (several times across the levels of
// a walk), so a single stray allocation here multiplies into millions
// per run.
func TestHotPathAllocationFree(t *testing.T) {
	c, err := New(Geometry{Name: "alloc", SizeBytes: 1 << 16, Ways: 8, Banks: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill more blocks than fit so the measured Fill calls evict.
	const span = 8192
	for i := 0; i < span; i++ {
		c.Fill(memaddr.Addr(i))
	}

	var sink bool
	var block memaddr.Addr
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 512; i++ {
			block = (block + 1) % span
			sink = c.Lookup(block)
			sink = c.Contains(block + span)
			c.Fill(block * 3 % (2 * span))
			if i&63 == 0 {
				c.Invalidate(block)
			}
		}
	}); n != 0 {
		t.Errorf("cache hot path allocated %.0f times per run, want 0", n)
	}
	_ = sink
}
