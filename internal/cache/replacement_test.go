package cache

import (
	"testing"

	"redhip/internal/memaddr"
)

func newWith(t *testing.T, pol ReplacementPolicy) *Cache {
	t.Helper()
	c, err := New(Geometry{Name: "t", SizeBytes: 512, Ways: 2, Banks: 1, Replacement: pol})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestReplacementPolicyNames(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Fatal("policy names")
	}
	if ReplacementPolicy(9).String() == "" {
		t.Fatal("out-of-range name")
	}
}

func TestGeometryRejectsBadPolicy(t *testing.T) {
	g := Geometry{Name: "t", SizeBytes: 512, Ways: 2, Banks: 1, Replacement: ReplacementPolicy(9)}
	if _, err := New(g); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestFIFOEvictsInsertionOrder(t *testing.T) {
	c := newWith(t, FIFO)
	b0, b1, b2 := memaddr.Addr(0), memaddr.Addr(4), memaddr.Addr(8) // same set
	c.Fill(b0)
	c.Fill(b1)
	// Touch b0 repeatedly: FIFO must NOT refresh it.
	for i := 0; i < 5; i++ {
		c.Lookup(b0)
	}
	ev, was := c.Fill(b2)
	if !was || ev != b0 {
		t.Fatalf("FIFO evicted %v, want first-inserted %v", ev, b0)
	}
}

func TestFIFORefillDoesNotRefresh(t *testing.T) {
	c := newWith(t, FIFO)
	b0, b1, b2 := memaddr.Addr(0), memaddr.Addr(4), memaddr.Addr(8)
	c.Fill(b0)
	c.Fill(b1)
	c.Fill(b0) // re-fill of resident block: FIFO keeps insertion order
	ev, was := c.Fill(b2)
	if !was || ev != b0 {
		t.Fatalf("FIFO re-fill refreshed: evicted %v, want %v", ev, b0)
	}
}

func TestLRURefreshContrastsFIFO(t *testing.T) {
	c := newWith(t, LRU)
	b0, b1, b2 := memaddr.Addr(0), memaddr.Addr(4), memaddr.Addr(8)
	c.Fill(b0)
	c.Fill(b1)
	c.Lookup(b0) // refresh: b1 becomes LRU
	ev, was := c.Fill(b2)
	if !was || ev != b1 {
		t.Fatalf("LRU evicted %v, want %v", ev, b1)
	}
}

func TestRandomPrefersInvalidWays(t *testing.T) {
	c := newWith(t, Random)
	b0, b1 := memaddr.Addr(0), memaddr.Addr(4)
	c.Fill(b0)
	// One way still invalid: no eviction may happen.
	if ev, was := c.Fill(b1); was {
		t.Fatalf("Random evicted %v with an invalid way free", ev)
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	run := func() []memaddr.Addr {
		c := newWith(t, Random)
		var evs []memaddr.Addr
		for i := 0; i < 64; i++ {
			if ev, was := c.Fill(memaddr.Addr(i * 4)); was {
				evs = append(evs, ev)
			}
		}
		return evs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic eviction count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic eviction order")
		}
	}
	if len(a) == 0 {
		t.Fatal("no evictions observed")
	}
}

func TestRandomEvictsVariedWays(t *testing.T) {
	c, err := New(Geometry{Name: "t", SizeBytes: 64 * 8, Ways: 8, Banks: 1, Replacement: Random})
	if err != nil {
		t.Fatal(err)
	}
	// One set of 8 ways; keep filling conflicting blocks and record
	// which resident block gets evicted.
	evicted := map[memaddr.Addr]bool{}
	for i := 0; i < 200; i++ {
		if ev, was := c.Fill(memaddr.Addr(i)); was {
			evicted[ev] = true
		}
	}
	if len(evicted) < 20 {
		t.Fatalf("random replacement produced only %d distinct victims", len(evicted))
	}
}

func TestPoliciesKeepCapacityInvariant(t *testing.T) {
	for _, pol := range []ReplacementPolicy{LRU, FIFO, Random} {
		c, err := New(Geometry{Name: "t", SizeBytes: 4096, Ways: 4, Banks: 1, Replacement: pol})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			c.Fill(memaddr.Addr(uint64(i*i+7) % (1 << 18)))
			if v := c.ValidBlocks(); v > 64 {
				t.Fatalf("%v: %d blocks > capacity", pol, v)
			}
		}
		s := c.Stats()
		if int(s.Fills-s.Evictions) != c.ValidBlocks() {
			t.Fatalf("%v: conservation violated", pol)
		}
	}
}
