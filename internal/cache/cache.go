// Package cache implements the set-associative caches of the simulated
// hierarchy: lookup, fill, eviction, invalidation and LRU replacement,
// plus the tag-array iteration the ReDHiP recalibration hardware needs
// (the prediction table is rebuilt from the LLC tag array, one set per
// cycle per bank — paper Section III-B, Figures 4 and 5).
package cache

import (
	"fmt"

	"redhip/internal/memaddr"
)

// ReplacementPolicy selects the victim-choice policy of a cache.
type ReplacementPolicy int

// The supported replacement policies. The paper's configuration uses
// LRU; FIFO and Random exist for the ablation study of how much the
// predictor's behaviour depends on the replacement policy.
const (
	// LRU evicts the least-recently-used way (default).
	LRU ReplacementPolicy = iota
	// FIFO evicts the oldest-inserted way regardless of use.
	FIFO
	// Random evicts a pseudo-randomly chosen way (deterministic
	// per-cache xorshift stream).
	Random
)

// String names the policy.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	}
	return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
}

// Geometry describes one cache level. All sizes must be powers of two.
type Geometry struct {
	Name      string
	SizeBytes uint64
	Ways      int
	Banks     int
	// Replacement selects the victim policy; the zero value is LRU.
	Replacement ReplacementPolicy
}

// Validate checks the geometry and returns the derived set count bits.
func (g Geometry) Validate() (setBits uint, err error) {
	if g.Ways <= 0 {
		return 0, fmt.Errorf("cache %s: ways must be positive, got %d", g.Name, g.Ways)
	}
	if g.Banks <= 0 {
		return 0, fmt.Errorf("cache %s: banks must be positive, got %d", g.Name, g.Banks)
	}
	if g.SizeBytes == 0 || g.SizeBytes%(uint64(g.Ways)*memaddr.BlockSize) != 0 {
		return 0, fmt.Errorf("cache %s: size %d not divisible into %d ways of %d-byte blocks",
			g.Name, g.SizeBytes, g.Ways, memaddr.BlockSize)
	}
	if g.Replacement < LRU || g.Replacement > Random {
		return 0, fmt.Errorf("cache %s: unknown replacement policy %d", g.Name, int(g.Replacement))
	}
	sets := g.SizeBytes / (uint64(g.Ways) * memaddr.BlockSize)
	setBits, err = memaddr.CheckedLog2(g.Name+" sets", sets)
	if err != nil {
		return 0, err
	}
	return setBits, nil
}

// Stats counts the events observed by one cache.
type Stats struct {
	Lookups     uint64 // demand lookups performed
	Hits        uint64
	Misses      uint64
	Fills       uint64 // blocks inserted
	Evictions   uint64 // valid blocks displaced by fills
	Invalidates uint64 // blocks removed by back-invalidation / promotion
}

// HitRate returns Hits/Lookups, or 0 when the cache was never looked up.
func (s *Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

type way struct {
	tag   uint64
	stamp uint64 // LRU timestamp; higher = more recent
	valid bool
}

// Cache is one set-associative cache level. It stores tags only — the
// simulator never needs data contents. Not safe for concurrent use.
type Cache struct {
	geo     Geometry
	setBits uint
	ways    []way // sets*ways, row-major by set
	nways   int
	clock   uint64
	stats   Stats
	rng     uint64 // xorshift state for Random replacement
}

// New builds a cache from its geometry.
func New(g Geometry) (*Cache, error) {
	setBits, err := g.Validate()
	if err != nil {
		return nil, err
	}
	sets := uint64(1) << setBits
	return &Cache{
		geo:     g,
		setBits: setBits,
		ways:    make([]way, sets*uint64(g.Ways)),
		nways:   g.Ways,
		rng:     0x9e3779b97f4a7c15,
	}, nil
}

// Geometry returns the construction parameters.
func (c *Cache) Geometry() Geometry { return c.geo }

// SetBits returns log2 of the set count (the paper's k).
func (c *Cache) SetBits() uint { return c.setBits }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return 1 << c.setBits }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.nways }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the event counters but not the contents.
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) setSlice(block memaddr.Addr) []way {
	set := memaddr.SetIndex(block, c.setBits)
	start := set * uint64(c.nways)
	return c.ways[start : start+uint64(c.nways)]
}

// Lookup probes for a block address, updating LRU and hit/miss
// counters. It returns true on a hit.
func (c *Cache) Lookup(block memaddr.Addr) bool {
	c.stats.Lookups++
	tag := memaddr.Tag(block, c.setBits)
	set := c.setSlice(block)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if c.geo.Replacement == LRU {
				c.clock++
				set[i].stamp = c.clock
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes for a block without touching LRU state or counters.
// The Oracle predictor uses it to read LLC presence for free.
func (c *Cache) Contains(block memaddr.Addr) bool {
	tag := memaddr.Tag(block, c.setBits)
	set := c.setSlice(block)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts a block, evicting the LRU way if the set is full. It
// returns the evicted block address when a valid block was displaced.
// Filling a block that is already present refreshes its LRU stamp
// instead of duplicating it.
func (c *Cache) Fill(block memaddr.Addr) (evicted memaddr.Addr, wasEvicted bool) {
	tag := memaddr.Tag(block, c.setBits)
	set := c.setSlice(block)
	c.clock++
	victim := -1
	var oldest uint64 = ^uint64(0)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			if c.geo.Replacement == LRU {
				set[i].stamp = c.clock // refresh recency; FIFO keeps insertion order
			}
			return 0, false
		}
		if !set[i].valid {
			if victim == -1 || set[victim].valid {
				victim = i
			}
			continue
		}
		if set[i].stamp < oldest && (victim == -1 || set[victim].valid) {
			oldest = set[i].stamp
			victim = i
		}
	}
	if c.geo.Replacement == Random && set[victim].valid {
		// All ways valid: override the age-based choice with a
		// deterministic pseudo-random pick.
		x := c.rng
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		c.rng = x
		victim = int((x * 0x2545f4914f6cdd1d) % uint64(c.nways))
	}
	c.stats.Fills++
	if set[victim].valid {
		c.stats.Evictions++
		evicted = memaddr.BlockFromSetTag(
			memaddr.SetIndex(block, c.setBits), set[victim].tag, c.setBits)
		wasEvicted = true
	}
	set[victim] = way{tag: tag, stamp: c.clock, valid: true}
	return evicted, wasEvicted
}

// Invalidate removes a block if present, returning whether it was.
// Used for inclusion back-invalidation and for exclusive promotion.
func (c *Cache) Invalidate(block memaddr.Addr) bool {
	tag := memaddr.Tag(block, c.setBits)
	set := c.setSlice(block)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			c.stats.Invalidates++
			return true
		}
	}
	return false
}

// ValidBlocks returns the number of valid blocks currently resident.
func (c *Cache) ValidBlocks() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid {
			n++
		}
	}
	return n
}

// TagsInSet appends the tags of the valid blocks in one set to buf and
// returns it. The recalibration hardware reads the LLC tag array this
// way, one set at a time (paper Figure 4).
func (c *Cache) TagsInSet(set int, buf []uint64) []uint64 {
	start := set * c.nways
	for i := start; i < start+c.nways; i++ {
		if c.ways[i].valid {
			buf = append(buf, c.ways[i].tag)
		}
	}
	return buf
}

// ForEachBlock calls fn for every valid resident block address. Used by
// tests and by predictor cross-checks.
func (c *Cache) ForEachBlock(fn func(block memaddr.Addr)) {
	for s := 0; s < c.NumSets(); s++ {
		for i := s * c.nways; i < (s+1)*c.nways; i++ {
			if c.ways[i].valid {
				fn(memaddr.BlockFromSetTag(uint64(s), c.ways[i].tag, c.setBits))
			}
		}
	}
}

// Flush invalidates the entire cache contents (counters are kept).
func (c *Cache) Flush() {
	for i := range c.ways {
		c.ways[i].valid = false
	}
}
