// Package cache implements the set-associative caches of the simulated
// hierarchy: lookup, fill, eviction, invalidation and LRU replacement,
// plus the tag-array iteration the ReDHiP recalibration hardware needs
// (the prediction table is rebuilt from the LLC tag array, one set per
// cycle per bank — paper Section III-B, Figures 4 and 5).
package cache

import (
	"fmt"
	"math/bits"

	"redhip/internal/memaddr"
	"redhip/internal/redhipassert"
)

// ReplacementPolicy selects the victim-choice policy of a cache.
type ReplacementPolicy int

// The supported replacement policies. The paper's configuration uses
// LRU; FIFO and Random exist for the ablation study of how much the
// predictor's behaviour depends on the replacement policy.
const (
	// LRU evicts the least-recently-used way (default).
	LRU ReplacementPolicy = iota
	// FIFO evicts the oldest-inserted way regardless of use.
	FIFO
	// Random evicts a pseudo-randomly chosen way (deterministic
	// per-cache xorshift stream).
	Random
)

// String names the policy.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	}
	return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
}

// Geometry describes one cache level. All sizes must be powers of two.
type Geometry struct {
	Name      string
	SizeBytes uint64
	Ways      int
	Banks     int
	// Replacement selects the victim policy; the zero value is LRU.
	Replacement ReplacementPolicy
}

// MaxWays is the highest supported associativity. The recency order of
// a set is packed into one uint64 (4 bits per way), which caps ways at
// 16 — comfortably above the 16-way LLCs the paper configures.
const MaxWays = 16

// Validate checks the geometry and returns the derived set count bits.
func (g Geometry) Validate() (setBits uint, err error) {
	if g.Ways <= 0 {
		return 0, fmt.Errorf("cache %s: ways must be positive, got %d", g.Name, g.Ways)
	}
	if g.Ways > MaxWays {
		return 0, fmt.Errorf("cache %s: ways %d exceeds the supported maximum %d", g.Name, g.Ways, MaxWays)
	}
	if g.Banks <= 0 {
		return 0, fmt.Errorf("cache %s: banks must be positive, got %d", g.Name, g.Banks)
	}
	if g.SizeBytes == 0 || g.SizeBytes%(uint64(g.Ways)*memaddr.BlockSize) != 0 {
		return 0, fmt.Errorf("cache %s: size %d not divisible into %d ways of %d-byte blocks",
			g.Name, g.SizeBytes, g.Ways, memaddr.BlockSize)
	}
	if g.Replacement < LRU || g.Replacement > Random {
		return 0, fmt.Errorf("cache %s: unknown replacement policy %d", g.Name, int(g.Replacement))
	}
	sets := g.SizeBytes / (uint64(g.Ways) * memaddr.BlockSize)
	setBits, err = memaddr.CheckedLog2(g.Name+" sets", sets)
	if err != nil {
		return 0, err
	}
	return setBits, nil
}

// Stats counts the events observed by one cache.
type Stats struct {
	Lookups     uint64 // demand lookups performed
	Hits        uint64
	Misses      uint64
	Fills       uint64 // blocks inserted
	Evictions   uint64 // valid blocks displaced by fills
	Invalidates uint64 // blocks removed by back-invalidation / promotion
}

// HitRate returns Hits/Lookups, or 0 when the cache was never looked up.
func (s *Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Way entries are packed as (tag<<1)|valid in a single uint64 so the
// hot way-scan of Lookup/Contains/Fill touches 8 bytes per way instead
// of a 24-byte struct. Block addresses are byte addresses with the
// 6-bit offset removed, so tags carry at most 58 significant bits and
// the shift never overflows.
//
// Recency is one packed uint64 per set instead of a timestamp per way:
// nibble k of ord[s] holds the way id at recency rank k (rank 0 = most
// recent). A hit rotates the hit way to rank 0 with a handful of
// register ops, and the replacement victim is read straight out of the
// last occupied nibble — no per-way timestamp loads, no O(ways) victim
// scan, and a set's whole recency state costs 8 bytes of cache
// footprint instead of 8*ways.

// ordIdent is the identity recency order: nibble k holds way k. Unused
// high nibbles (ways < 16) never match a real way id, so they stay
// inert above the occupied ranks.
const ordIdent = 0xFEDCBA9876543210

// Cache is one set-associative cache level. It stores tags only — the
// simulator never needs data contents. Not safe for concurrent use.
type Cache struct {
	geo     Geometry
	setBits uint     //redhip:transient geometry-derived, rebuilt by New
	setMask uint64   //redhip:transient (1<<setBits)-1, hoisted out of the per-access path, rebuilt by New
	nways   uint64   //redhip:transient geometry-derived, rebuilt by New
	tagv    []uint64 // sets*ways, row-major by set: (tag<<1)|valid
	ord     []uint64 // per-set packed recency order, 4 bits per way
	lru     bool     //redhip:transient Replacement == LRU, hoisted out of Lookup, rebuilt by New
	fifo    bool     //redhip:transient Replacement == FIFO, rebuilt by New
	stats   Stats    //redhip:transient measurement counters, deliberately reset at the snapshot boundary
	rng     uint64   // xorshift state for Random replacement
}

// New builds a cache from its geometry.
func New(g Geometry) (*Cache, error) {
	setBits, err := g.Validate()
	if err != nil {
		return nil, err
	}
	sets := uint64(1) << setBits
	c := &Cache{
		geo:     g,
		setBits: setBits,
		setMask: sets - 1,
		tagv:    make([]uint64, sets*uint64(g.Ways)),
		ord:     make([]uint64, sets),
		nways:   uint64(g.Ways),
		lru:     g.Replacement == LRU,
		fifo:    g.Replacement == FIFO,
		rng:     0x9e3779b97f4a7c15,
	}
	for i := range c.ord {
		c.ord[i] = ordIdent
	}
	return c, nil
}

// orderIsPermutation reports whether set si's packed recency word still
// holds a permutation of the 16 way ids — the structural invariant the
// SWAR rotation in promote must preserve. Unused high nibbles (ways <
// 16) keep their identity values, so a valid word always covers all 16.
// Only redhipassert-tagged builds call this.
func (c *Cache) orderIsPermutation(si uint64) bool {
	var seen uint64
	o := c.ord[si]
	for i := 0; i < MaxWays; i++ {
		seen |= 1 << (o & 15)
		o >>= 4
	}
	return seen == 0xFFFF
}

// promote rotates way to the most-recent rank of set si's recency
// word. The way's current rank is located with a SWAR zero-nibble
// scan: borrows in the subtraction only propagate above the lowest
// zero nibble, so the lowest marker bit is exact, and way ids are
// unique within a set, so the zero nibble is unique too.
//
//redhip:hotpath
func (c *Cache) promote(si, way uint64) {
	o := c.ord[si]
	if o&15 == way {
		// Already most recent — the common case under temporal
		// locality (repeated hits to the same block).
		return
	}
	x := o ^ (way * 0x1111111111111111)
	sh := uint(bits.TrailingZeros64((x-0x1111111111111111)&^x&0x8888888888888888)) - 3
	low := o & (uint64(1)<<sh - 1)
	c.ord[si] = o&^(uint64(1)<<(sh+4)-1) | low<<4 | way
}

// Geometry returns the construction parameters.
func (c *Cache) Geometry() Geometry { return c.geo }

// SetBits returns log2 of the set count (the paper's k).
func (c *Cache) SetBits() uint { return c.setBits }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return 1 << c.setBits }

// Ways returns the associativity.
func (c *Cache) Ways() int { return int(c.nways) }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the event counters but not the contents.
//
//redhip:allow noassert -- stats-only mutation, no structural state
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Lookup probes for a block address, updating LRU and hit/miss
// counters. It returns true on a hit.
//
//redhip:hotpath
func (c *Cache) Lookup(block memaddr.Addr) bool {
	c.stats.Lookups++
	want := uint64(block)>>c.setBits<<1 | 1
	si := uint64(block) & c.setMask
	base := si * c.nways
	set := c.tagv[base : base+c.nways : base+c.nways]
	for i := range set {
		if set[i] == want {
			if c.lru {
				c.promote(si, uint64(i))
				if redhipassert.Enabled {
					redhipassert.Check(c.orderIsPermutation(si), "cache: recency order corrupted by promote on hit")
				}
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes for a block without touching LRU state or counters.
// The Oracle predictor uses it to read LLC presence for free.
//
//redhip:hotpath
func (c *Cache) Contains(block memaddr.Addr) bool {
	want := uint64(block)>>c.setBits<<1 | 1
	base := (uint64(block) & c.setMask) * c.nways
	set := c.tagv[base : base+c.nways : base+c.nways]
	for i := range set {
		if set[i] == want {
			return true
		}
	}
	return false
}

// Fill inserts a block, evicting the LRU way if the set is full. It
// returns the evicted block address when a valid block was displaced.
// Filling a block that is already present refreshes its LRU recency
// instead of duplicating it.
//
// Victim choice is deliberately order-sensitive (first invalid way by
// index, else the least-recent occupied rank) because the golden
// determinism tests pin its exact behaviour.
//
//redhip:hotpath
func (c *Cache) Fill(block memaddr.Addr) (evicted memaddr.Addr, wasEvicted bool) {
	want := uint64(block)>>c.setBits<<1 | 1
	si := uint64(block) & c.setMask
	base := si * c.nways
	set := c.tagv[base : base+c.nways : base+c.nways]
	invalid := -1
	for i := range set {
		v := set[i]
		if v == want {
			if c.lru {
				c.promote(si, uint64(i)) // refresh recency; FIFO keeps insertion order
			}
			return 0, false
		}
		if v&1 == 0 && invalid == -1 {
			invalid = i
		}
	}
	victim := invalid
	if victim == -1 {
		if c.geo.Replacement == Random {
			// All ways valid: deterministic pseudo-random pick.
			x := c.rng
			x ^= x >> 12
			x ^= x << 25
			x ^= x >> 27
			c.rng = x
			victim = int((x * 0x2545f4914f6cdd1d) % c.nways)
		} else {
			// LRU and FIFO both evict the last occupied rank: every
			// insertion promotes to rank 0, and LRU additionally
			// promotes on hits, so the last rank is the lowest stamp
			// either way.
			victim = int(c.ord[si] >> (4 * (c.nways - 1)) & 15)
		}
	}
	c.stats.Fills++
	if v := set[victim]; v&1 != 0 {
		c.stats.Evictions++
		evicted = memaddr.BlockFromSetTag(si, v>>1, c.setBits)
		wasEvicted = true
	}
	set[victim] = want
	if c.lru || c.fifo {
		c.promote(si, uint64(victim))
	}
	if redhipassert.Enabled {
		redhipassert.Check(c.orderIsPermutation(si), "cache: recency order corrupted by fill")
		redhipassert.Check(c.Contains(block), "cache: fill did not make the block resident")
	}
	return evicted, wasEvicted
}

// Invalidate removes a block if present, returning whether it was.
// Used for inclusion back-invalidation and for exclusive promotion.
//
//redhip:hotpath
func (c *Cache) Invalidate(block memaddr.Addr) bool {
	want := uint64(block)>>c.setBits<<1 | 1
	base := (uint64(block) & c.setMask) * c.nways
	set := c.tagv[base : base+c.nways : base+c.nways]
	for i := range set {
		if set[i] == want {
			set[i] = 0
			c.stats.Invalidates++
			if redhipassert.Enabled {
				redhipassert.Check(!c.Contains(block), "cache: block still resident after invalidate")
			}
			return true
		}
	}
	return false
}

// ValidBlocks returns the number of valid blocks currently resident.
func (c *Cache) ValidBlocks() int {
	n := 0
	for _, v := range c.tagv {
		if v&1 != 0 {
			n++
		}
	}
	return n
}

// TagsInSet appends the tags of the valid blocks in one set to buf and
// returns it. The recalibration hardware reads the LLC tag array this
// way, one set at a time (paper Figure 4).
func (c *Cache) TagsInSet(set int, buf []uint64) []uint64 {
	start := uint64(set) * c.nways
	for _, v := range c.tagv[start : start+c.nways] {
		if v&1 != 0 {
			buf = append(buf, v>>1)
		}
	}
	return buf
}

// ForEachBlock calls fn for every valid resident block address. Used by
// tests and by predictor cross-checks.
func (c *Cache) ForEachBlock(fn func(block memaddr.Addr)) {
	for s := 0; s < c.NumSets(); s++ {
		start := uint64(s) * c.nways
		for _, v := range c.tagv[start : start+c.nways] {
			if v&1 != 0 {
				fn(memaddr.BlockFromSetTag(uint64(s), v>>1, c.setBits))
			}
		}
	}
}

// SnapshotState copies out the cache's warm contents: the packed
// tag/valid words, the per-set recency words, and the replacement RNG
// cursor. Stats are not captured — snapshotting happens at the
// warmup/measure boundary, where the engine zeroes them anyway.
func (c *Cache) SnapshotState() (tagv, ord []uint64, rng uint64) {
	tagv = append([]uint64(nil), c.tagv...)
	ord = append([]uint64(nil), c.ord...)
	return tagv, ord, c.rng
}

// RestoreSnapshotState overwrites the cache's contents with a
// previously-snapshotted state. Slice lengths must match this cache's
// geometry exactly; under redhipassert every restored recency word is
// re-validated as a way permutation.
func (c *Cache) RestoreSnapshotState(tagv, ord []uint64, rng uint64) error {
	if len(tagv) != len(c.tagv) {
		return fmt.Errorf("cache %s: snapshot has %d tag words, geometry needs %d", c.geo.Name, len(tagv), len(c.tagv))
	}
	if len(ord) != len(c.ord) {
		return fmt.Errorf("cache %s: snapshot has %d order words, geometry needs %d", c.geo.Name, len(ord), len(c.ord))
	}
	copy(c.tagv, tagv)
	copy(c.ord, ord)
	c.rng = rng
	if redhipassert.Enabled {
		for si := range c.ord {
			redhipassert.Check(c.orderIsPermutation(uint64(si)), "cache: restored recency order is not a permutation")
		}
	}
	return nil
}

// Flush invalidates the entire cache contents (counters are kept).
func (c *Cache) Flush() {
	for i := range c.tagv {
		c.tagv[i] = 0
	}
	if redhipassert.Enabled {
		redhipassert.Check(c.ValidBlocks() == 0, "cache: blocks survived a flush")
	}
}
