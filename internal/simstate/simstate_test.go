package simstate

import (
	"bytes"
	"hash/crc64"
	"strings"
	"testing"
)

// sampleSnapshot exercises every field, including the optional
// Mirror/CBF branches and empty slices.
func sampleSnapshot() *Snapshot {
	s := &Snapshot{
		Meta: Meta{
			Workload:   "soplex",
			Scheme:     "redhip",
			Cores:      4,
			WarmupRefs: 25_000,
		},
		Caches: []CacheState{
			{TagV: []uint64{1, 2, 3}, Ord: []uint64{0xFEDCBA9876543210}, RNG: 42},
			{TagV: []uint64{}, Ord: nil, RNG: 7},
		},
		Tables: []TableState{
			{Words: []uint64{0xDEAD, 0xBEEF}, Lookups: 10, PredHits: 9, Sets: 8, Recals: 1},
		},
		Mirror: &MirrorState{Refs: []uint32{0, 1, 2, 0xFFFFFFFF}},
		CBF: &CBFState{
			Counters: []uint8{0, 1, 15}, Lookups: 5, Present: 4, Saturated: 1, Underflow: 0,
		},
		Prefetchers: []PrefetcherState{
			{Entries: []PrefetchEntry{{PC: 0x400000, LastAddr: 0x1000, Stride: -64, State: 2, Valid: true}}},
			{},
		},
		PFFilter:         []PFSlot{{Slot: 3, Mark: 99}, {Slot: 77, Mark: 1}},
		PFMarks:          2,
		MissesSinceRecal: 1234,
		Adaptive:         AdaptiveState{On: true, Streak: 3, EpochRefs: 500, EpochStartMiss: 20, EpochStartTN: 11},
		FNSeen:           false,
		FNBlock:          0,
		Sources:          [][]uint64{{0x9e3779b97f4a7c15, 5, 1}, {12345}},
	}
	copy(s.Meta.ConfigHash[:], bytes.Repeat([]byte{0xAB}, 32))
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	orig := sampleSnapshot()
	blob := Encode(orig)
	dec, err := Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	re := Encode(dec)
	if !bytes.Equal(blob, re) {
		t.Fatalf("re-encode diverged: %d vs %d bytes", len(blob), len(re))
	}
	if dec.Meta != orig.Meta {
		t.Errorf("Meta round-trip: got %+v want %+v", dec.Meta, orig.Meta)
	}
	if dec.PFMarks != orig.PFMarks || dec.MissesSinceRecal != orig.MissesSinceRecal ||
		dec.Adaptive != orig.Adaptive || dec.FNSeen != orig.FNSeen || dec.FNBlock != orig.FNBlock {
		t.Errorf("scalar fields diverged after round trip")
	}
	if len(dec.Caches) != len(orig.Caches) || len(dec.Tables) != len(orig.Tables) ||
		len(dec.Prefetchers) != len(orig.Prefetchers) || len(dec.Sources) != len(orig.Sources) {
		t.Errorf("slice lengths diverged after round trip")
	}
}

// TestDecodeRejectsCorruption flips every byte of a valid blob in turn
// and asserts the checksum (or a structural check behind it) rejects
// the mutation with a simstate-prefixed error. A bit flip that decodes
// cleanly would restore a subtly-wrong machine — the one failure mode
// the trailer exists to rule out.
func TestDecodeRejectsCorruption(t *testing.T) {
	blob := Encode(sampleSnapshot())
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x5A
		_, err := Decode(mut)
		if err == nil {
			t.Fatalf("byte %d: corrupted blob decoded without error", i)
		}
		if !strings.HasPrefix(err.Error(), "simstate: ") {
			t.Fatalf("byte %d: error not simstate-prefixed: %v", i, err)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	blob := Encode(sampleSnapshot())
	for _, n := range []int{0, 7, len(blob) / 2, len(blob) - 1} {
		if _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		} else if !strings.HasPrefix(err.Error(), "simstate: ") {
			t.Fatalf("truncation to %d: error not simstate-prefixed: %v", n, err)
		}
	}
}

// reseal recomputes the CRC trailer over a hand-mutated body so only
// the structural check under test can object.
func reseal(body []byte) []byte {
	e := &encoder{buf: body}
	e.u64(crc64.Checksum(body, crcTable))
	return e.buf
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	blob := Encode(sampleSnapshot())
	// Patch the version field and re-seal the checksum.
	body := append([]byte(nil), blob[:len(blob)-8]...)
	body[len(blobMagic)] = 99
	if _, err := Decode(reseal(body)); err == nil || !strings.Contains(err.Error(), "unsupported snapshot version") {
		t.Fatalf("bad version not rejected: %v", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	blob := Encode(sampleSnapshot())
	// Insert extra payload bytes before the trailer and re-seal.
	body := append([]byte(nil), blob[:len(blob)-8]...)
	body = append(body, 0xEE, 0xEE)
	if _, err := Decode(reseal(body)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes not rejected: %v", err)
	}
}

func TestDecodeRejectsNonCanonicalBool(t *testing.T) {
	s := sampleSnapshot()
	s.Mirror, s.CBF = nil, nil
	blob := Encode(s)
	// The Mirror presence byte is the first bool in the payload; find it
	// by encoding twice with the flag flipped and diffing offsets.
	s2 := sampleSnapshot()
	s2.CBF = nil
	blob2 := Encode(s2)
	diff := -1
	for i := 0; i < len(blob) && i < len(blob2); i++ {
		if blob[i] != blob2[i] {
			diff = i
			break
		}
	}
	if diff < 0 {
		t.Fatal("could not locate presence byte")
	}
	body := append([]byte(nil), blob[:len(blob)-8]...)
	body[diff] = 2
	if _, err := Decode(reseal(body)); err == nil || !strings.Contains(err.Error(), "non-canonical bool") {
		t.Fatalf("non-canonical bool not rejected: %v", err)
	}
}

// FuzzSnapshotRoundTrip pins the canonical-form contract: any byte
// string Decode accepts must re-encode to exactly itself.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(Encode(sampleSnapshot()))
	f.Add(Encode(&Snapshot{}))
	empty := sampleSnapshot()
	empty.Mirror, empty.CBF = nil, nil
	empty.Caches, empty.Tables, empty.Prefetchers, empty.PFFilter, empty.Sources = nil, nil, nil, nil, nil
	f.Add(Encode(empty))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "simstate: ") {
				t.Fatalf("error not simstate-prefixed: %v", err)
			}
			return
		}
		re := Encode(s)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted blob is not canonical: %d in, %d re-encoded", len(data), len(re))
		}
		// And the canonical form itself must be stable.
		s2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded blob failed decode: %v", err)
		}
		if !bytes.Equal(Encode(s2), re) {
			t.Fatal("second round trip diverged")
		}
	})
}
