package simstate

import "testing"

func key(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(100)
	blob := make([]byte, 40)
	s.Put(key(1), blob)
	s.Put(key(2), blob)
	// Touch 1 so 2 is the LRU victim.
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	s.Put(key(3), blob)
	if _, ok := s.Get(key(2)); ok {
		t.Error("LRU victim 2 survived eviction")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Error("recently-used key 1 was evicted")
	}
	if _, ok := s.Get(key(3)); !ok {
		t.Error("new key 3 missing")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 80 {
		t.Errorf("stats after eviction: %+v", st)
	}
}

func TestStoreOversizeBlobNotStored(t *testing.T) {
	s := NewStore(10)
	s.Put(key(1), make([]byte, 11))
	if _, ok := s.Get(key(1)); ok {
		t.Error("over-budget blob was stored")
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("oversize put left residue: %+v", st)
	}
}

func TestStoreReplaceRefreshes(t *testing.T) {
	s := NewStore(100)
	s.Put(key(1), make([]byte, 30))
	s.Put(key(1), make([]byte, 50))
	st := s.Stats()
	if st.Entries != 1 || st.Bytes != 50 || st.Puts != 2 {
		t.Errorf("replace accounting: %+v", st)
	}
}

func TestStoreRestoreStats(t *testing.T) {
	s := NewStore(0)
	before := s.Stats()
	s.RecordRestore(100)
	s.RecordRestore(300)
	d := s.Stats().Delta(before)
	if d.Restores != 2 || d.RestoreNanos != 400 {
		t.Errorf("restore delta: %+v", d)
	}
	if got := s.Stats().MeanRestoreNanos(); got != 200 {
		t.Errorf("MeanRestoreNanos = %v, want 200", got)
	}
	if st := s.Stats(); st.BudgetBytes != DefaultBudgetBytes {
		t.Errorf("default budget = %d", st.BudgetBytes)
	}
}
