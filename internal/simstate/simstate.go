// Package simstate serialises a fully-warmed simulator into a
// versioned, checksummed binary blob and back. The blob captures
// everything that distinguishes a warmed engine from a cold one at the
// warmup/measure boundary — cache recency/residency words, prediction
// table words and counters, predictor/prefetch-filter state, the
// adaptive monitor, and per-core workload-source cursors — so a
// measure phase branched from a restored snapshot is bit-identical to
// one that simulated the warmup itself (pinned by the golden
// fingerprint suite in internal/sim).
//
// The format is strictly canonical: fixed-width little-endian scalars,
// u32 length prefixes, bools as exactly 0 or 1, field order fixed by
// this package. Decode rejects every non-canonical or truncated form,
// so decode∘encode is the identity on valid blobs and encode∘decode is
// the identity on accepted byte strings (FuzzSnapshotRoundTrip pins
// this). A CRC-64/ECMA of everything before the trailer closes the
// blob; a flipped bit anywhere fails Decode with a "simstate: " error
// rather than restoring a subtly-wrong machine.
//
// Serialisation here is setup/teardown code, never the per-reference
// loop: the hotpath analyzer exempts this package as a whole (see
// analysis.SerializationPackages).
package simstate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
)

// blobMagic opens every snapshot blob.
const blobMagic = "RDHPSNAP"

// Version is the current format version. Decode rejects anything else:
// warm state is too entangled with engine internals for cross-version
// restores to be safe, so a version bump simply invalidates old blobs
// (the store treats that as a miss and re-warms).
const Version = 1

// crcTable is the CRC-64/ECMA table used for the blob trailer.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta identifies what a snapshot is a snapshot OF. Restore validates
// it against the caller's configuration before touching any engine
// state: a blob for the wrong geometry, workload, seed lineage or
// scheme is rejected, not silently applied.
type Meta struct {
	// ConfigHash is sim.WarmKey's digest of the canonical warm-relevant
	// configuration (geometry × workload × seed × warmup refs × scheme).
	ConfigHash [32]byte
	// Workload and Scheme are carried redundantly in the clear so a
	// mismatch produces a readable error instead of "hash differs".
	Workload string
	Scheme   string
	// Cores is the geometry's core count; slice lengths below are
	// validated against it.
	Cores uint32
	// WarmupRefs is the per-core warmup length the snapshot absorbed.
	WarmupRefs uint64
}

// CacheState is one cache's warm contents: packed tag/valid words,
// packed per-set recency/FIFO order words, and the replacement RNG
// cursor. Stats are NOT captured — the warmup/measure boundary zeroes
// them, so a restored engine starts from zero exactly like a
// straight-through run does.
type CacheState struct {
	TagV []uint64
	Ord  []uint64
	RNG  uint64
}

// TableState is one prediction table's words plus its lifetime
// counters (lookups/predHits/sets/recals feed PredStats, which the
// measure phase reports as deltas — but recalibration cadence depends
// on the absolute counters, so they are part of the warm state).
type TableState struct {
	Words    []uint64
	Lookups  uint64
	PredHits uint64
	Sets     uint64
	Recals   uint64
}

// MirrorState is the exact-mirror prediction table used when
// RecalPeriod==1.
type MirrorState struct {
	Refs []uint32
}

// CBFState is the counting-Bloom-filter predictor's counters and
// lifetime stats.
type CBFState struct {
	Counters  []uint8
	Lookups   uint64
	Present   uint64
	Saturated uint64
	Underflow uint64
}

// PrefetchEntry mirrors one reference-prediction-table row of a stride
// prefetcher.
type PrefetchEntry struct {
	PC       uint64
	LastAddr uint64
	Stride   int64
	State    uint8
	Valid    bool
}

// PrefetcherState is one core's stride prefetcher table. Issue/useful
// stats reset at the boundary and are not captured.
type PrefetcherState struct {
	Entries []PrefetchEntry
}

// PFSlot is one occupied slot of the engine's direct-mapped
// prefetch-usefulness filter, stored sparsely (slot index ascending).
type PFSlot struct {
	Slot uint32
	Mark uint64
}

// AdaptiveState is the adaptive-disable monitor's warm state.
type AdaptiveState struct {
	On             bool
	Streak         uint64
	EpochRefs      uint64
	EpochStartMiss uint64
	EpochStartTN   uint64
}

// Snapshot is the complete warm state of one engine at the
// warmup/measure boundary.
type Snapshot struct {
	Meta Meta
	// Caches holds every cache in canonical engine order: per-core L1s,
	// per-core L2s, per-core L3s, then the shared L4.
	Caches []CacheState
	// Tables holds core.Table instances in canonical order: the main
	// prediction table (if the scheme has one), then the exclusive-mode
	// shadow tables (exL2 per core, exL3 per core, exL4) when present.
	Tables []TableState
	// Mirror is the RecalPeriod==1 exact mirror, when in use.
	Mirror *MirrorState
	// CBF is the counting-Bloom-filter predictor, when in use.
	CBF *CBFState
	// Prefetchers holds one entry per core when prefetching is enabled.
	Prefetchers []PrefetcherState
	// PFFilter is the sparse occupied-slot list of the prefetch
	// usefulness filter; PFMarks is the engine's count of live marks and
	// must equal len(PFFilter).
	PFFilter []PFSlot
	PFMarks  uint64
	// MissesSinceRecal is the recalibration clock's position.
	MissesSinceRecal uint64
	// Adaptive is the adaptive-disable monitor.
	Adaptive AdaptiveState
	// FNSeen/FNBlock carry the false-negative detector: a warmup that
	// tripped it must fail the restored run exactly like the
	// straight-through run fails.
	FNSeen  bool
	FNBlock uint64
	// Sources holds each per-core workload source's opaque cursor words
	// (workload.StateSource.AppendState), index = core.
	Sources [][]uint64
}

// --- encoding ------------------------------------------------------------------

// Encode serialises s into a fresh blob: magic, version, payload,
// CRC-64/ECMA trailer.
func Encode(s *Snapshot) []byte {
	e := &encoder{buf: make([]byte, 0, encodedHint(s))}
	e.raw([]byte(blobMagic))
	e.u32(Version)
	encodePayload(e, s)
	sum := crc64.Checksum(e.buf, crcTable)
	e.u64(sum)
	return e.buf
}

func encodedHint(s *Snapshot) int {
	n := 64 + len(s.Meta.Workload) + len(s.Meta.Scheme)
	for i := range s.Caches {
		n += 8*(len(s.Caches[i].TagV)+len(s.Caches[i].Ord)) + 24
	}
	for i := range s.Tables {
		n += 8*len(s.Tables[i].Words) + 40
	}
	if s.Mirror != nil {
		n += 4 * len(s.Mirror.Refs)
	}
	if s.CBF != nil {
		n += len(s.CBF.Counters) + 40
	}
	n += 26*totalPrefetchEntries(s) + 12*len(s.PFFilter) + 64
	for i := range s.Sources {
		n += 8*len(s.Sources[i]) + 8
	}
	return n
}

func totalPrefetchEntries(s *Snapshot) int {
	n := 0
	for i := range s.Prefetchers {
		n += len(s.Prefetchers[i].Entries)
	}
	return n
}

func encodePayload(e *encoder, s *Snapshot) {
	e.raw(s.Meta.ConfigHash[:])
	e.str(s.Meta.Workload)
	e.str(s.Meta.Scheme)
	e.u32(s.Meta.Cores)
	e.u64(s.Meta.WarmupRefs)

	e.u32(uint32(len(s.Caches)))
	for i := range s.Caches {
		c := &s.Caches[i]
		e.u64s(c.TagV)
		e.u64s(c.Ord)
		e.u64(c.RNG)
	}
	e.u32(uint32(len(s.Tables)))
	for i := range s.Tables {
		t := &s.Tables[i]
		e.u64s(t.Words)
		e.u64(t.Lookups)
		e.u64(t.PredHits)
		e.u64(t.Sets)
		e.u64(t.Recals)
	}
	e.bool(s.Mirror != nil)
	if s.Mirror != nil {
		e.u32s(s.Mirror.Refs)
	}
	e.bool(s.CBF != nil)
	if s.CBF != nil {
		e.u8s(s.CBF.Counters)
		e.u64(s.CBF.Lookups)
		e.u64(s.CBF.Present)
		e.u64(s.CBF.Saturated)
		e.u64(s.CBF.Underflow)
	}
	e.u32(uint32(len(s.Prefetchers)))
	for i := range s.Prefetchers {
		ents := s.Prefetchers[i].Entries
		e.u32(uint32(len(ents)))
		for j := range ents {
			en := &ents[j]
			e.u64(en.PC)
			e.u64(en.LastAddr)
			e.u64(uint64(en.Stride))
			e.u8(en.State)
			e.bool(en.Valid)
		}
	}
	e.u32(uint32(len(s.PFFilter)))
	for i := range s.PFFilter {
		e.u32(s.PFFilter[i].Slot)
		e.u64(s.PFFilter[i].Mark)
	}
	e.u64(s.PFMarks)
	e.u64(s.MissesSinceRecal)
	e.bool(s.Adaptive.On)
	e.u64(s.Adaptive.Streak)
	e.u64(s.Adaptive.EpochRefs)
	e.u64(s.Adaptive.EpochStartMiss)
	e.u64(s.Adaptive.EpochStartTN)
	e.bool(s.FNSeen)
	e.u64(s.FNBlock)
	e.u32(uint32(len(s.Sources)))
	for i := range s.Sources {
		e.u64s(s.Sources[i])
	}
}

// Decode parses a blob back into a Snapshot. It is strict: bad magic,
// unknown version, checksum mismatch, truncation, trailing bytes and
// non-canonical encodings (a bool byte other than 0/1) all fail with a
// "simstate: "-prefixed error.
func Decode(data []byte) (*Snapshot, error) {
	const trailer = 8
	header := len(blobMagic) + 4
	if len(data) < header+trailer {
		return nil, errors.New("simstate: blob too short")
	}
	if string(data[:len(blobMagic)]) != blobMagic {
		return nil, errors.New("simstate: bad magic")
	}
	body, tail := data[:len(data)-trailer], data[len(data)-trailer:]
	if got, want := binary.LittleEndian.Uint64(tail), crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("simstate: checksum mismatch (blob corrupt): got %#x want %#x", got, want)
	}
	d := &decoder{buf: body, off: len(blobMagic)}
	if v := d.u32(); d.err == nil && v != Version {
		return nil, fmt.Errorf("simstate: unsupported snapshot version %d (want %d)", v, Version)
	}
	s := decodePayload(d)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("simstate: %d trailing payload bytes", len(d.buf)-d.off)
	}
	return s, nil
}

func decodePayload(d *decoder) *Snapshot {
	s := &Snapshot{}
	d.raw(s.Meta.ConfigHash[:])
	s.Meta.Workload = d.str()
	s.Meta.Scheme = d.str()
	s.Meta.Cores = d.u32()
	s.Meta.WarmupRefs = d.u64()

	if n := d.count(24); n > 0 {
		s.Caches = make([]CacheState, n)
		for i := range s.Caches {
			c := &s.Caches[i]
			c.TagV = d.u64s()
			c.Ord = d.u64s()
			c.RNG = d.u64()
		}
	}
	if n := d.count(40); n > 0 {
		s.Tables = make([]TableState, n)
		for i := range s.Tables {
			t := &s.Tables[i]
			t.Words = d.u64s()
			t.Lookups = d.u64()
			t.PredHits = d.u64()
			t.Sets = d.u64()
			t.Recals = d.u64()
		}
	}
	if d.bool() {
		s.Mirror = &MirrorState{Refs: d.u32s()}
	}
	if d.bool() {
		s.CBF = &CBFState{
			Counters:  d.u8s(),
			Lookups:   d.u64(),
			Present:   d.u64(),
			Saturated: d.u64(),
			Underflow: d.u64(),
		}
	}
	if n := d.count(4); n > 0 {
		s.Prefetchers = make([]PrefetcherState, n)
		for i := range s.Prefetchers {
			if m := d.count(26); m > 0 {
				ents := make([]PrefetchEntry, m)
				for j := range ents {
					en := &ents[j]
					en.PC = d.u64()
					en.LastAddr = d.u64()
					en.Stride = int64(d.u64())
					en.State = d.u8()
					en.Valid = d.bool()
				}
				s.Prefetchers[i].Entries = ents
			}
		}
	}
	if n := d.count(12); n > 0 {
		s.PFFilter = make([]PFSlot, n)
		for i := range s.PFFilter {
			s.PFFilter[i].Slot = d.u32()
			s.PFFilter[i].Mark = d.u64()
		}
	}
	s.PFMarks = d.u64()
	s.MissesSinceRecal = d.u64()
	s.Adaptive.On = d.bool()
	s.Adaptive.Streak = d.u64()
	s.Adaptive.EpochRefs = d.u64()
	s.Adaptive.EpochStartMiss = d.u64()
	s.Adaptive.EpochStartTN = d.u64()
	s.FNSeen = d.bool()
	s.FNBlock = d.u64()
	if n := d.count(8); n > 0 {
		s.Sources = make([][]uint64, n)
		for i := range s.Sources {
			s.Sources[i] = d.u64s()
		}
	}
	return s
}

// --- wire primitives -----------------------------------------------------------

type encoder struct{ buf []byte }

func (e *encoder) raw(b []byte) { e.buf = append(e.buf, b...) }
func (e *encoder) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) u64s(v []uint64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u64(x)
	}
}

func (e *encoder) u32s(v []uint32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(x)
	}
}

func (e *encoder) u8s(v []uint8) {
	e.u32(uint32(len(v)))
	e.buf = append(e.buf, v...)
}

// decoder reads the canonical wire form. The first failure latches err
// and turns every later read into a zero-value no-op, so decode code
// reads straight through and checks err once.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("simstate: "+format, args...)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("truncated snapshot (need %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) raw(dst []byte) {
	if b := d.take(len(dst)); b != nil {
		copy(dst, b)
	}
}

func (d *decoder) u8() uint8 {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *decoder) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *decoder) u64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *decoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("non-canonical bool encoding")
		return false
	}
}

// count reads a u32 element count and bounds it against the bytes
// remaining (elemSize = minimum wire bytes per element), so a
// hostile length prefix cannot force a huge allocation.
func (d *decoder) count(elemSize int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n*elemSize > len(d.buf)-d.off {
		d.fail("length prefix %d exceeds remaining payload", n)
		return 0
	}
	return n
}

func (d *decoder) str() string {
	n := d.count(1)
	return string(d.take(n))
}

func (d *decoder) u64s() []uint64 {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = d.u64()
	}
	return v
}

func (d *decoder) u32s() []uint32 {
	n := d.count(4)
	if n == 0 {
		return nil
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = d.u32()
	}
	return v
}

func (d *decoder) u8s() []uint8 {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	v := make([]uint8, n)
	copy(v, d.take(n))
	return v
}
