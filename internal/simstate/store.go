package simstate

import (
	"sync"

	"redhip/internal/redhipassert"
)

// DefaultBudgetBytes bounds the snapshot store when the caller passes
// 0. Warm blobs are a few hundred KiB each at paper geometries, so
// 64 MiB holds every (workload × scheme) pair of a large sweep.
const DefaultBudgetBytes = 64 << 20

// Key identifies one warm prefix: sim.WarmKey's SHA-256 over the
// canonical warm-relevant configuration (geometry × workload × seed ×
// warmup refs × scheme).
type Key [32]byte

// StoreStats are the store's counters (cumulative for the store's
// lifetime; use Delta for per-interval readings) and gauges.
type StoreStats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Evictions uint64
	// Restores counts engine restores branched from stored blobs;
	// RestoreNanos is their summed decode+restore wall time, recorded
	// by callers via RecordRestore.
	Restores     uint64
	RestoreNanos int64
	// Entries/Bytes/BudgetBytes describe current occupancy.
	Entries     int
	Bytes       uint64
	BudgetBytes uint64
}

// HitRate returns Hits/(Hits+Misses), 0 when idle.
func (s StoreStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// MeanRestoreNanos returns the average wall time of one restore.
func (s StoreStats) MeanRestoreNanos() float64 {
	if s.Restores == 0 {
		return 0
	}
	return float64(s.RestoreNanos) / float64(s.Restores)
}

// Delta returns the counter movement since prev; gauges (Entries,
// Bytes, BudgetBytes) keep their current values.
func (s StoreStats) Delta(prev StoreStats) StoreStats {
	return StoreStats{
		Hits:         s.Hits - prev.Hits,
		Misses:       s.Misses - prev.Misses,
		Puts:         s.Puts - prev.Puts,
		Evictions:    s.Evictions - prev.Evictions,
		Restores:     s.Restores - prev.Restores,
		RestoreNanos: s.RestoreNanos - prev.RestoreNanos,
		Entries:      s.Entries,
		Bytes:        s.Bytes,
		BudgetBytes:  s.BudgetBytes,
	}
}

// Store is a byte-budget LRU of encoded snapshot blobs, safe for
// concurrent use. Blobs are stored and handed out by reference: they
// are immutable by contract (Encode returns a fresh slice, Decode
// never writes through its input), so hits are zero-copy.
//
// There is no single-flight here, deliberately: two goroutines warming
// the same key concurrently waste one warmup but stay correct (the
// blobs are bit-identical, the second Put is a no-op refresh), and
// warms are rare enough that the coordination would cost more than the
// duplicate work it saves.
type Store struct {
	mu      sync.Mutex
	budget  uint64
	entries map[Key]*snapEntry //redhip:guardedby mu
	head    *snapEntry         //redhip:guardedby mu // most recent
	tail    *snapEntry         //redhip:guardedby mu // next victim
	bytes   uint64             //redhip:guardedby mu
	stats   StoreStats         //redhip:guardedby mu
}

type snapEntry struct {
	key        Key
	blob       []byte
	prev, next *snapEntry
}

// NewStore builds a snapshot store; budgetBytes 0 selects
// DefaultBudgetBytes.
func NewStore(budgetBytes uint64) *Store {
	if budgetBytes == 0 {
		budgetBytes = DefaultBudgetBytes
	}
	return &Store{
		budget:  budgetBytes,
		entries: make(map[Key]*snapEntry),
	}
}

// Get returns the blob stored under k, if any, refreshing its recency.
// Callers must treat the returned slice as read-only.
func (s *Store) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[k]
	if e == nil {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.moveToFrontLocked(e)
	return e.blob, true
}

// Put stores blob under k, evicting least-recently-used entries to
// stay within budget. A blob larger than the whole budget is not
// stored (it would evict everything and then be evicted itself on the
// next Put). Re-putting an existing key replaces its blob and
// refreshes recency.
func (s *Store) Put(k Key, blob []byte) {
	size := uint64(len(blob))
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	if size > s.budget {
		return
	}
	if e := s.entries[k]; e != nil {
		s.bytes += size - uint64(len(e.blob))
		e.blob = blob
		s.moveToFrontLocked(e)
	} else {
		e = &snapEntry{key: k, blob: blob}
		s.entries[k] = e
		s.bytes += size
		s.pushFrontLocked(e)
	}
	for s.bytes > s.budget && s.tail != nil {
		victim := s.tail
		s.unlinkLocked(victim)
		delete(s.entries, victim.key)
		s.bytes -= uint64(len(victim.blob))
		s.stats.Evictions++
	}
	if redhipassert.Enabled {
		redhipassert.Check(s.listConsistentLocked(), "simstate: snapshot LRU list inconsistent with entry map")
	}
}

// RecordRestore accounts one completed snapshot restore: nanos is the
// decode+restore wall time the caller measured.
func (s *Store) RecordRestore(nanos int64) {
	s.mu.Lock()
	s.stats.Restores++
	s.stats.RestoreNanos += nanos
	s.mu.Unlock()
}

// Stats returns a snapshot of the store's counters and occupancy.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	st.BudgetBytes = s.budget
	return st
}

// --- intrusive LRU list (s.mu held: the Locked suffix is the guarded
// analyzer's contract)  --------------------------------------------------------

func (s *Store) pushFrontLocked(e *snapEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *Store) unlinkLocked(e *snapEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) moveToFrontLocked(e *snapEntry) {
	if s.head == e {
		return
	}
	s.unlinkLocked(e)
	s.pushFrontLocked(e)
}

// listConsistentLocked cross-checks the LRU list against the map and
// byte accounting — the redhipassert invariant behind every Put.
func (s *Store) listConsistentLocked() bool {
	n, bytes := 0, uint64(0)
	for e := s.head; e != nil; e = e.next {
		if s.entries[e.key] != e {
			return false
		}
		if e.next != nil && e.next.prev != e {
			return false
		}
		n++
		bytes += uint64(len(e.blob))
	}
	return n == len(s.entries) && bytes == s.bytes && (s.head == nil) == (s.tail == nil)
}
