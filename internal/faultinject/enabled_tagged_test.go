//go:build faultinject

package faultinject

import "testing"

// TestEnabledUnderTag pins the chaos build: with -tags faultinject the
// Enabled constant is true and injection points evaluate schedules.
func TestEnabledUnderTag(t *testing.T) {
	if !Enabled {
		t.Fatalf("Enabled = false in a -tags faultinject build")
	}
}
