//go:build !faultinject

package faultinject

// Enabled is false in production builds; `if faultinject.Enabled`
// blocks are dead-code-eliminated and injection points cost nothing on
// any path, hot or cold.
const Enabled = false
