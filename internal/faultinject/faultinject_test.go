package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDeterministicSchedule: the same seed and evaluation sequence
// fires the same faults; a different seed fires a different (but still
// reproducible) subset.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed uint64) []bool {
		in := New(seed, Rule{Point: "p", Prob: 0.3, Err: "boom"})
		fired := make([]bool, 64)
		for i := range fired {
			fired[i] = in.Point("p") != nil
		}
		return fired
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("evaluation %d diverged across identical seeds", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical 64-evaluation schedules")
	}
	anyFired := false
	for _, f := range a {
		anyFired = anyFired || f
	}
	if !anyFired {
		t.Fatalf("prob=0.3 rule never fired in 64 evaluations")
	}
}

// TestAfterAndTimes: After skips leading evaluations, Times caps
// fires, and exhausted rules go quiet.
func TestAfterAndTimes(t *testing.T) {
	in := New(1, Rule{Point: "p", After: 2, Times: 3, Err: "x"})
	var got []int
	for i := 0; i < 10; i++ {
		if in.Point("p") != nil {
			got = append(got, i)
		}
	}
	want := []int{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	}
	if in.Evals("p") != 10 || in.Fires("p") != 3 {
		t.Fatalf("evals=%d fires=%d, want 10/3", in.Evals("p"), in.Fires("p"))
	}
}

// TestPanicAndInjectedError: panic outcomes panic with the point name,
// error outcomes carry *InjectedError.
func TestPanicAndInjectedError(t *testing.T) {
	in := New(1, Rule{Point: "e", Err: "transient"}, Rule{Point: "k", Panic: "kaboom"})
	err := in.Point("e")
	if !IsInjected(err) {
		t.Fatalf("Point(e) = %v, want injected error", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Point != "e" {
		t.Fatalf("injected error = %#v, want Point e", err)
	}
	defer func() {
		v := recover()
		if v == nil || !strings.Contains(v.(string), "kaboom") {
			t.Fatalf("recover = %v, want kaboom panic", v)
		}
	}()
	_ = in.Point("k")
	t.Fatalf("panic rule did not panic")
}

// TestStopAndNil: stopped and nil injectors never fire, and the global
// Fire is nil-safe.
func TestStopAndNil(t *testing.T) {
	in := New(1, Rule{Point: "p", Err: "x"})
	in.Stop()
	if err := in.Point("p"); err != nil {
		t.Fatalf("stopped injector fired: %v", err)
	}
	var nilIn *Injector
	if err := nilIn.Point("p"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	prev := Set(nil)
	defer Set(prev)
	if err := Fire("p"); err != nil {
		t.Fatalf("global Fire with no injector fired: %v", err)
	}
	Set(New(1, Rule{Point: "p", Err: "global"}))
	if err := Fire("p"); err == nil {
		t.Fatalf("global Fire with installed injector did not fire")
	}
	Set(nil)
}

// TestDelayRule: a delay rule sleeps without erroring.
func TestDelayRule(t *testing.T) {
	in := New(1, Rule{Point: "p", Times: 1, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := in.Point("p"); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delay rule slept %v, want >= 10ms", d)
	}
}

// TestConcurrentEvaluation: evaluation under contention stays
// bounded — exactly Times fires land across all goroutines (run with
// -race to patrol the counters).
func TestConcurrentEvaluation(t *testing.T) {
	in := New(7, Rule{Point: "p", Times: 5, Err: "x"})
	var mu sync.Mutex
	fired := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if in.Point("p") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 5 {
		t.Fatalf("fired %d times across goroutines, want exactly 5", fired)
	}
}

// TestParseRules: the -fault wire format round-trips, and malformed
// schedules are rejected.
func TestParseRules(t *testing.T) {
	rules, err := ParseRules("experiment.run:times=2,err=injected transient; tracestore.get:prob=0.1,delay=2ms,after=4")
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(rules))
	}
	r0, r1 := rules[0], rules[1]
	if r0.Point != "experiment.run" || r0.Times != 2 || r0.Err != "injected transient" {
		t.Fatalf("rule 0 = %+v", r0)
	}
	if r1.Point != "tracestore.get" || r1.Prob != 0.1 || r1.Delay != 2*time.Millisecond || r1.After != 4 {
		t.Fatalf("rule 1 = %+v", r1)
	}
	for _, bad := range []string{
		"",                     // empty
		"noseparator",          // missing colon
		"p:prob=2,err=x",       // prob out of range
		"p:frobnicate=1,err=x", // unknown key
		"p:times=abc,err=x",    // bad uint
		"p:after=1",            // no outcome
		"p:delay=fast,err=x",   // bad duration
		"p:prob",               // bad pair
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted a malformed schedule", bad)
		}
	}
}
