// Package faultinject is the repo's deterministic fault-injection
// layer: named injection points threaded through the serving and
// caching stack (tracestore materialisation, experiment runs, serve
// admission/workers/SSE) that a seeded schedule can turn into errors,
// panics or latency spikes — the chaos harness's lever for proving the
// resilience invariants in DESIGN.md §12.
//
// Zero cost when disabled. Enabled is a constant selected by the
// `faultinject` build tag, false by default, so every call site guards
// its evaluation with
//
//	if faultinject.Enabled {
//	    if err := faultinject.Fire(faultinject.PointTracestoreMaterialize); err != nil {
//	        return nil, err
//	    }
//	}
//
// and the production compiler deletes the whole block — the same
// dead-code contract redhipassert uses, and redhip-lint's hotpath and
// determinism analyzers exempt these guards for the same reason.
//
// Determinism. An Injector owns a seed; whether a probability rule
// fires at the Nth evaluation of a point is a pure function of (seed,
// point name, N) via a splitmix64 stream, never of wall time or the
// global rand. Two chaos runs with the same seed and the same
// per-point evaluation counts inject the same faults.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injection point names. The inventory lives in DESIGN.md §12; points
// are plain strings so packages can add local ones without touching
// this list, but the cross-package points are named here to keep call
// sites and schedules in sync.
const (
	// PointTracestoreMaterialize fires inside tracestore.Store.Get's
	// single-flight fill, before generation starts: an error models a
	// failed materialisation, a delay a slow fill.
	PointTracestoreMaterialize = "tracestore.materialize"
	// PointTracestoreGet fires at the top of every tracestore.Store.Get,
	// hit or miss: delays here widen eviction/single-flight race windows.
	PointTracestoreGet = "tracestore.get"
	// PointExperimentRun fires before every executed (non-memoised)
	// simulation run inside experiment.Runner: errors model transient
	// run failures, panics exercise the runner's recover path.
	PointExperimentRun = "experiment.run"
	// PointServeAdmit fires during POST /v1/jobs admission, after
	// validation and before the job is registered.
	PointServeAdmit = "serve.admit"
	// PointServeWorker fires in a serve worker goroutine after the job
	// transitions to running and before each execution attempt.
	PointServeWorker = "serve.worker"
	// PointServeSSE fires at the start of every SSE subscription,
	// before the event-log replay.
	PointServeSSE = "serve.sse"
)

// Rule schedules faults at one injection point. The zero value of
// every knob is inert: a Rule fires only through Prob (probabilistic)
// or, when Prob is zero, on every eligible evaluation — bounded either
// way by After/Times.
type Rule struct {
	// Point is the injection point name the rule matches, exactly.
	Point string
	// Prob is the per-evaluation firing probability in [0, 1]. Zero
	// means "always fire when eligible" — use Times to bound it.
	Prob float64
	// After skips the first After evaluations of the point before the
	// rule becomes eligible.
	After uint64
	// Times caps how often the rule fires; zero means unlimited.
	Times uint64
	// Delay, when positive, sleeps before the outcome is applied —
	// latency injection, composable with Err and Panic.
	Delay time.Duration
	// Err, when non-empty, makes the point return an error with this
	// message.
	Err string
	// Panic, when non-empty, makes the point panic with this message.
	// Panic wins over Err when both are set.
	Panic string
}

// InjectedError is the error type injected Err outcomes carry, so
// consumers can distinguish scheduled faults from organic failures.
type InjectedError struct {
	Point string
	Msg   string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: %s: %s", e.Point, e.Msg)
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// Injector evaluates injection points against a rule schedule. Safe
// for concurrent use; the rule set is immutable after construction.
type Injector struct {
	seed    uint64
	stopped atomic.Bool

	mu    sync.Mutex
	rules []Rule
	evals map[string]uint64 // evaluations per point
	fires map[string]uint64 // applied outcomes per point
}

// New builds an injector for a seeded schedule. Rules are evaluated in
// order; the first rule that fires at an evaluation supplies the
// outcome.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{
		seed:  seed,
		rules: append([]Rule(nil), rules...),
		evals: make(map[string]uint64),
		fires: make(map[string]uint64),
	}
}

// Stop deactivates the injector: every later Point evaluation is a
// no-op. Chaos tests call it after the fault phase so the recovery
// phase runs fault-free without tearing down the server under test.
func (in *Injector) Stop() { in.stopped.Store(true) }

// Point evaluates one injection point: it may sleep (Delay), panic
// (Panic) or return an injected error (Err), per the first firing
// rule. Callers must guard with faultinject.Enabled so the evaluation
// compiles out of production builds.
func (in *Injector) Point(name string) error {
	if in == nil || in.stopped.Load() {
		return nil
	}
	in.mu.Lock()
	idx := in.evals[name]
	in.evals[name] = idx + 1
	var fired *Rule
	for i := range in.rules {
		r := &in.rules[i]
		if r.Point != name || idx < r.After {
			continue
		}
		if r.Times > 0 && in.fires[ruleID(r, i)] >= r.Times {
			continue
		}
		// The decision is salted with the rule's identity, not just the
		// point: two probabilistic rules on one point flip independent
		// (still deterministic) coins, so a rare rule listed after a
		// common one is not permanently shadowed by it.
		if r.Prob > 0 && decide(in.seed, ruleID(r, i), idx) >= r.Prob {
			continue
		}
		in.fires[ruleID(r, i)]++
		in.fires[name]++
		fired = r
		break
	}
	in.mu.Unlock()
	if fired == nil {
		return nil
	}
	if fired.Delay > 0 {
		time.Sleep(fired.Delay)
	}
	if fired.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", name, fired.Panic))
	}
	if fired.Err != "" {
		return &InjectedError{Point: name, Msg: fired.Err}
	}
	return nil
}

// ruleID keys per-rule fire counters. Distinct from the per-point
// aggregate key because a point may carry several rules.
func ruleID(r *Rule, i int) string {
	return r.Point + "#" + strconv.Itoa(i)
}

// Evals returns how often a point has been evaluated.
func (in *Injector) Evals(point string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.evals[point]
}

// Fires returns how often any rule has fired at a point.
func (in *Injector) Fires(point string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[point]
}

// decide maps (seed, point, evaluation index) to a uniform [0, 1)
// value through a splitmix64 stream — the deterministic coin behind
// probabilistic rules.
func decide(seed uint64, point string, idx uint64) float64 {
	x := seed ^ fnv64(point) ^ (idx+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// fnv64 is FNV-1a, inlined to keep the package dependency-free.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// --- process-global injector ---------------------------------------------------

// active is the process-wide injector packages without an options
// channel (tracestore) evaluate against.
var active atomic.Pointer[Injector]

// Set installs in as the process-wide injector (nil clears it) and
// returns the previous one so tests can restore it.
func Set(in *Injector) *Injector {
	prev := active.Load()
	active.Store(in)
	return prev
}

// Active returns the process-wide injector, or nil.
func Active() *Injector { return active.Load() }

// Fire evaluates a point against the process-wide injector; a nil
// injector never fires. Call sites must guard with Enabled.
func Fire(point string) error {
	return active.Load().Point(point)
}

// --- schedule parsing ----------------------------------------------------------

// ParseRules parses a compact schedule description, the wire format of
// redhip-serve's -fault flag and chaos_smoke.sh:
//
//	point:key=value,key=value[;point:key=value,...]
//
// Keys: prob (float), after (uint), times (uint), delay (Go duration),
// err (string), panic (string). Example:
//
//	experiment.run:times=2,err=injected transient;tracestore.get:prob=0.1,delay=2ms
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		point, body, ok := strings.Cut(clause, ":")
		if !ok || strings.TrimSpace(point) == "" {
			return nil, fmt.Errorf("faultinject: rule %q: want point:key=value,...", clause)
		}
		r := Rule{Point: strings.TrimSpace(point)}
		for _, kv := range strings.Split(body, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: rule %q: bad pair %q", clause, kv)
			}
			var err error
			switch key {
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.Prob < 0 || r.Prob > 1) {
					err = fmt.Errorf("out of [0,1]")
				}
			case "after":
				r.After, err = strconv.ParseUint(val, 10, 64)
			case "times":
				r.Times, err = strconv.ParseUint(val, 10, 64)
			case "delay":
				r.Delay, err = time.ParseDuration(val)
			case "err":
				r.Err = val
			case "panic":
				r.Panic = val
			default:
				err = fmt.Errorf("unknown key")
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: %s=%s: %v", clause, key, val, err)
			}
		}
		if r.Err == "" && r.Panic == "" && r.Delay == 0 {
			return nil, fmt.Errorf("faultinject: rule %q has no outcome (err, panic or delay)", clause)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty schedule %q", spec)
	}
	return rules, nil
}
