//go:build faultinject

package faultinject

// Enabled selects the chaos build: `go test -tags faultinject` (and
// the chaos_smoke.sh server build) evaluate every injection point
// against the installed schedule.
const Enabled = true
