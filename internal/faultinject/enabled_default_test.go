//go:build !faultinject

package faultinject

import "testing"

// TestDisabledByDefault pins the zero-cost contract: without the
// faultinject build tag, Enabled is a false constant, so every
// `if faultinject.Enabled { ... }` call site compiles out entirely and
// the hot-path alloc/bench gates see no injection code at all.
func TestDisabledByDefault(t *testing.T) {
	if Enabled {
		t.Fatalf("Enabled = true in a build without the faultinject tag")
	}
}
