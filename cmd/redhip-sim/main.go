// Command redhip-sim runs a single simulation configuration and prints
// the detailed result: per-level hit rates, cycle counts, the full
// energy breakdown, predictor accuracy and prefetcher statistics.
// With -compare it also runs the Base configuration and reports the
// paper's headline metrics (speedup, dynamic/total energy savings).
//
// Usage:
//
//	redhip-sim -workload mcf -scheme redhip
//	redhip-sim -workload lbm -scheme redhip -prefetch -compare
//	redhip-sim -workload mix -scheme oracle -inclusion hybrid -refs 1000000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"redhip/internal/energy"
	"redhip/internal/sim"
	"redhip/internal/trace"
	"redhip/internal/version"
	"redhip/internal/workload"
)

func main() {
	var (
		wl        = flag.String("workload", "mcf", "workload name (see redhip-trace -list)")
		scheme    = flag.String("scheme", "redhip", "scheme: base, phased, cbf, redhip or oracle")
		inclusion = flag.String("inclusion", "inclusive", "inclusion policy: inclusive, hybrid or exclusive")
		geometry  = flag.String("geometry", "scaled", "cache geometry: paper, scaled or smoke")
		refs      = flag.Uint64("refs", 0, "references per core (default: geometry preset)")
		seed      = flag.Uint64("seed", 1, "workload generator seed")
		ptBytes   = flag.Uint64("pt", 0, "prediction table bytes (default: geometry preset)")
		recal     = flag.Uint64("recal", 0, "recalibration period in L1 misses (default: geometry preset; use 'never' via -no-recal)")
		noRecal   = flag.Bool("no-recal", false, "disable recalibration")
		prefetch  = flag.Bool("prefetch", false, "enable the stride prefetcher")
		compare   = flag.Bool("compare", false, "also run Base and print relative metrics")
		jsonOut   = flag.Bool("json", false, "emit the full result as JSON instead of text")
		traceFile = flag.String("trace", "", "replay a recorded trace file (redhip-trace -gen) on every core instead of a named workload")
		warmup    = flag.Uint64("warmup", 0, "references per core to run before the measurement window (paper: warm-up phases skipped)")
		showVer   = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}

	cfg, err := configFor(*geometry)
	if err != nil {
		fatal(err)
	}
	if cfg.Scheme, err = parseScheme(*scheme); err != nil {
		fatal(err)
	}
	if cfg.Inclusion, err = parseInclusion(*inclusion); err != nil {
		fatal(err)
	}
	if *refs > 0 {
		cfg.RefsPerCore = *refs
	}
	if *ptBytes > 0 {
		cfg.PTBytes = *ptBytes
	}
	if *recal > 0 {
		cfg.RecalPeriod = *recal
	}
	if *noRecal {
		cfg.RecalPeriod = 0
	}
	cfg.EnablePrefetch = *prefetch
	cfg.WarmupRefsPerCore = *warmup

	var res *sim.Result
	if *traceFile != "" {
		res, err = runTrace(cfg, *traceFile)
	} else {
		res, err = run(cfg, *wl, *seed)
	}
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		if !*compare {
			return
		}
	} else {
		printResult(res, &cfg)
	}

	if *compare {
		base := cfg.WithScheme(sim.Base).WithPrefetch(false)
		var baseRes *sim.Result
		if *traceFile != "" {
			baseRes, err = runTrace(base, *traceFile)
		} else {
			baseRes, err = run(base, *wl, *seed)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Printf("vs base:\n")
		fmt.Printf("  speedup:                %+.1f%%\n", 100*res.Speedup(baseRes))
		fmt.Printf("  dynamic energy:         %.1f%% of base (%.1f%% saving)\n",
			100*res.DynamicEnergyRatio(baseRes), 100*(1-res.DynamicEnergyRatio(baseRes)))
		fmt.Printf("  total energy saving:    %+.1f%%\n", 100*res.TotalEnergySaving(baseRes))
		fmt.Printf("  performance-energy:     %.3f\n", res.PerformanceEnergyMetric(baseRes))
	}
}

// runTrace replays a recorded trace on every core (each core gets an
// independent cursor over the same records, like the paper's
// multiprogrammed duplication) and bounds the run by the trace length.
func runTrace(cfg sim.Config, path string) (*sim.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; close errors carry no data
	tr, err := trace.Read(f)
	if err != nil {
		return nil, err
	}
	if n := uint64(len(tr.Records)); n > 0 && n < cfg.RefsPerCore {
		cfg.RefsPerCore = n
	}
	srcs := make([]workload.Source, cfg.Cores)
	for i := range srcs {
		srcs[i] = workload.FromTrace(tr)
	}
	return sim.Run(cfg, srcs)
}

func run(cfg sim.Config, wl string, seed uint64) (*sim.Result, error) {
	srcs, err := workload.Sources(wl, cfg.Cores, cfg.WorkloadScale, seed)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg, srcs)
}

func printResult(r *sim.Result, cfg *sim.Config) {
	fmt.Printf("workload %s, scheme %s, %s hierarchy, %d cores\n",
		r.Workload, r.Scheme, r.Inclusion, cfg.Cores)
	fmt.Printf("refs: %d   cycles: %d   memory fetches: %d\n", r.Refs, r.Cycles, r.MemoryFetches)
	fmt.Println("level  lookups      hit rate  dynamic nJ")
	for l := energy.L1; l < energy.NumLevels; l++ {
		s := r.Levels[l]
		fmt.Printf("%-5s  %-11d  %6.2f%%  %.4g\n", l, s.Lookups, 100*s.HitRate(), r.Dynamic.LevelNJ(l))
	}
	fmt.Printf("predictor energy: %.4g nJ   recalibration energy: %.4g nJ\n", r.Dynamic.PTNJ, r.Dynamic.RecalJ)
	fmt.Printf("dynamic total: %.4g nJ   leakage: %.4g nJ   total: %.4g nJ\n",
		r.DynamicNJ(), r.LeakageNJ, r.TotalNJ())
	if r.Pred.Lookups > 0 {
		fmt.Printf("predictor: %d lookups, %.1f%% accurate (TP %d, FP %d, TN %d, FN %d), %d recalibrations (%d stall cycles)\n",
			r.Pred.Lookups, 100*r.Pred.Accuracy(), r.Pred.TruePositive, r.Pred.FalsePositive,
			r.Pred.TrueNegative, r.Pred.FalseNegative, r.Pred.Recalibrations, r.Pred.RecalCycles)
	}
	if r.Prefetch.Issued > 0 {
		fmt.Printf("prefetch: %d issued, %d useful (%.1f%%)\n", r.Prefetch.Issued, r.Prefetch.Useful,
			100*float64(r.Prefetch.Useful)/float64(r.Prefetch.Issued))
	}
}

func configFor(geometry string) (sim.Config, error) {
	switch geometry {
	case "paper":
		c := sim.Paper()
		c.RefsPerCore = 2_000_000
		return c, nil
	case "scaled":
		return sim.Scaled(), nil
	case "smoke":
		return sim.Smoke(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown geometry %q", geometry)
	}
}

func parseScheme(s string) (sim.Scheme, error) {
	for _, sc := range sim.Schemes() {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func parseInclusion(s string) (sim.InclusionPolicy, error) {
	for _, p := range []sim.InclusionPolicy{sim.Inclusive, sim.Hybrid, sim.Exclusive} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown inclusion policy %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "redhip-sim:", err)
	os.Exit(1)
}
