//go:build faultinject

package main

import (
	"fmt"
	"log"

	"redhip/internal/faultinject"
)

// installFaultSchedule parses the -fault schedule and builds the
// injector the server threads through its injection points.
func installFaultSchedule(spec string, seed uint64) (*faultinject.Injector, error) {
	if spec == "" {
		return nil, nil
	}
	rules, err := faultinject.ParseRules(spec)
	if err != nil {
		return nil, fmt.Errorf("parse -fault: %w", err)
	}
	log.Printf("redhip-serve: fault injection armed (seed %d): %s", seed, spec)
	return faultinject.New(seed, rules...), nil
}
