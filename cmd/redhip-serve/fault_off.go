//go:build !faultinject

package main

import (
	"fmt"

	"redhip/internal/faultinject"
)

// installFaultSchedule rejects -fault in untagged builds: injection
// points compile to nothing here, so silently accepting a schedule
// would run a chaos drill that injects no faults.
func installFaultSchedule(spec string, seed uint64) (*faultinject.Injector, error) {
	if spec != "" {
		return nil, fmt.Errorf("-fault requires a binary built with -tags faultinject")
	}
	return nil, nil
}
