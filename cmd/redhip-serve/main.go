// Command redhip-serve runs the simulation service: an HTTP API that
// accepts sweep jobs, executes them on a bounded worker pool backed by
// the materialise-once trace store, and exposes status polling, SSE
// progress streams and Prometheus-text metrics.
//
// Usage:
//
//	redhip-serve -addr :8080 -workers 4 -queue 64
//
// Endpoints:
//
//	POST   /v1/jobs                  submit a job (JSON spec) -> 202 + id
//	GET    /v1/jobs                  list resident jobs
//	GET    /v1/jobs/{id}             status + results
//	DELETE /v1/jobs/{id}             cancel
//	GET    /v1/jobs/{id}/events      SSE progress stream
//	POST   /v1/sweeps                submit a parameter grid -> 202 + id; expands
//	                                 into child jobs through the same admission
//	                                 path (dedup, breakers, shedding all apply)
//	GET    /v1/sweeps                list resident sweeps
//	GET    /v1/sweeps/{id}           sweep status (+ per-child table; ?children=false)
//	DELETE /v1/sweeps/{id}           cancel the sweep, fan out to owned children
//	GET    /v1/sweeps/{id}/events    SSE sweep progress (replay-then-live)
//	GET    /v1/sweeps/{id}/artifacts aggregated Fig 9/Fig 7 tables, JSON or
//	                                 ?format=text (409 until the sweep is done)
//	GET    /metrics                  Prometheus text metrics
//	GET    /healthz                  liveness JSON {"status","version"} (200 while
//	                                 the process serves HTTP at all)
//	GET    /readyz                   readiness (503 while draining, a circuit is
//	                                 open, or the memory shedder is denying
//	                                 admissions)
//
// Resilience: specs may carry a retry policy (bounded exponential
// backoff, capped by -retry-max); repeated run failures under one
// scheme open a per-scheme circuit breaker (-breaker-threshold /
// -breaker-cooldown) that sheds matching submissions with 503 +
// Retry-After; each admitted job reserves its estimated trace
// footprint against -memory-budget and oversized load is shed at the
// door.
//
// Performance: -trace-dir enables the trace store's mmap-backed disk
// tier (evicted streams spill to an unlinked temp file and replay
// zero-copy, bounded by -trace-disk-budget); -snapshot-cache-bytes
// enables the warm-state snapshot store, so jobs that share a warmup
// prefix warm once and branch their measure phases bit-identically.
//
// Cluster mode: -router (with -advertise, optional -name and
// -lease-timeout) registers this instance with a redhip-router and
// runs it as one replica of a sharded cluster — the router's /readyz
// probes double as lease renewals, and losing the lease fences all
// non-terminal jobs (the router has re-homed them; see
// internal/cluster).
//
// Builds tagged `faultinject` additionally accept -fault / -fault-seed
// to install a deterministic fault schedule (see internal/faultinject)
// for chaos drills; untagged builds reject the flags.
//
// SIGINT/SIGTERM triggers a graceful drain: new submissions are
// rejected, queued jobs are cancelled, in-flight jobs complete (bounded
// by -shutdown-grace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"redhip/internal/serve"
	"redhip/internal/version"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent job executors (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 64, "max queued jobs before 429")
		cacheBytes = flag.Uint64("cache-bytes", 0, "trace store byte budget (0 = default 256 MiB)")
		traceDir   = flag.String("trace-dir", "", "enable the trace store's mmap-backed disk tier: streams evicted from RAM spill to an unlinked temp file here and replay zero-copy")
		diskBudget = flag.Uint64("trace-disk-budget", 0, "disk tier byte budget (0 = default 1 GiB); needs -trace-dir")
		snapBytes  = flag.Uint64("snapshot-cache-bytes", 0, "warm-state snapshot store byte budget (0 disables; jobs with warmup_refs_per_core warm once and branch)")
		maxJobs    = flag.Int("max-jobs", 1024, "max resident jobs (LRU result cache size)")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "default per-job execution timeout")
		maxTimeout = flag.Duration("max-timeout", 30*time.Minute, "cap on spec-requested timeouts")
		runnerPar  = flag.Int("runner-parallelism", 1, "simulation parallelism inside each job")
		grace      = flag.Duration("shutdown-grace", 30*time.Second, "drain budget for in-flight jobs on SIGINT/SIGTERM")
		retryMax   = flag.Int("retry-max", 0, "cap on per-spec retry attempts (0 = default 5, -1 disables retries)")
		brkThresh  = flag.Int("breaker-threshold", 0, "consecutive per-scheme run failures that open its circuit (0 = default 5, -1 disables)")
		brkCool    = flag.Duration("breaker-cooldown", 0, "how long an open circuit sheds before half-opening (0 = default 30s)")
		memBudget  = flag.Int64("memory-budget", 0, "aggregate trace-byte admission budget (0 = default 1 GiB, -1 disables shedding)")
		routerURL  = flag.String("router", "", "redhip-router base URL; set to run as a cluster replica (registers and arms the lease watchdog)")
		advertise  = flag.String("advertise", "", "base URL the router reaches this replica at (required with -router)")
		name       = flag.String("name", "", "replica name in the ring (default: the advertise URL)")
		leaseTO    = flag.Duration("lease-timeout", 0, "fence after this long without a router probe (0 = auto: derived from the dead-declaration floor the router advertises at registration; explicit values must stay below that floor)")
		faultSpec  = flag.String("fault", "", "fault schedule for chaos drills, e.g. 'experiment.run:prob=0.1,err=boom' (requires a -tags faultinject build)")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for the -fault schedule")
		showVer    = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}

	injector, err := installFaultSchedule(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redhip-serve:", err)
		os.Exit(1)
	}

	srv, err := serve.New(serve.Options{
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		TraceCacheBytes:      *cacheBytes,
		TraceDir:             *traceDir,
		TraceDiskBudgetBytes: *diskBudget,
		SnapshotCacheBytes:   *snapBytes,
		MaxStoredJobs:        *maxJobs,
		DefaultTimeout:       *jobTimeout,
		MaxTimeout:           *maxTimeout,
		RunnerParallelism:    *runnerPar,
		RetryMaxAttempts:     *retryMax,
		BreakerThreshold:     *brkThresh,
		BreakerCooldown:      *brkCool,
		MemoryBudgetBytes:    *memBudget,
		Fault:                injector,
		RouterURL:            *routerURL,
		AdvertiseURL:         *advertise,
		ReplicaName:          *name,
		LeaseTimeout:         *leaseTO,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "redhip-serve:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("redhip-serve: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "redhip-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("redhip-serve: %s — draining (grace %s)", sig, *grace)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("redhip-serve: drain incomplete: %v", err)
	}
	// Listener shutdown second: SSE streams of finished jobs have
	// received their terminal events by now and close themselves.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("redhip-serve: http shutdown: %v", err)
	}
	log.Printf("redhip-serve: drained")
}
