// Command redhip-serve runs the simulation service: an HTTP API that
// accepts sweep jobs, executes them on a bounded worker pool backed by
// the materialise-once trace store, and exposes status polling, SSE
// progress streams and Prometheus-text metrics.
//
// Usage:
//
//	redhip-serve -addr :8080 -workers 4 -queue 64
//
// Endpoints:
//
//	POST   /v1/jobs             submit a sweep (JSON spec) -> 202 + id
//	GET    /v1/jobs             list resident jobs
//	GET    /v1/jobs/{id}        status + results
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /metrics             Prometheus text metrics
//	GET    /healthz             liveness (503 while draining)
//
// SIGINT/SIGTERM triggers a graceful drain: new submissions are
// rejected, queued jobs are cancelled, in-flight jobs complete (bounded
// by -shutdown-grace).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"redhip/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent job executors (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 64, "max queued jobs before 429")
		cacheBytes = flag.Uint64("cache-bytes", 0, "trace store byte budget (0 = default 256 MiB)")
		maxJobs    = flag.Int("max-jobs", 1024, "max resident jobs (LRU result cache size)")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "default per-job execution timeout")
		maxTimeout = flag.Duration("max-timeout", 30*time.Minute, "cap on spec-requested timeouts")
		runnerPar  = flag.Int("runner-parallelism", 1, "simulation parallelism inside each job")
		grace      = flag.Duration("shutdown-grace", 30*time.Second, "drain budget for in-flight jobs on SIGINT/SIGTERM")
	)
	flag.Parse()

	srv, err := serve.New(serve.Options{
		Workers:           *workers,
		QueueDepth:        *queueDepth,
		TraceCacheBytes:   *cacheBytes,
		MaxStoredJobs:     *maxJobs,
		DefaultTimeout:    *jobTimeout,
		MaxTimeout:        *maxTimeout,
		RunnerParallelism: *runnerPar,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "redhip-serve:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("redhip-serve: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "redhip-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("redhip-serve: %s — draining (grace %s)", sig, *grace)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("redhip-serve: drain incomplete: %v", err)
	}
	// Listener shutdown second: SSE streams of finished jobs have
	// received their terminal events by now and close themselves.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("redhip-serve: http shutdown: %v", err)
	}
	log.Printf("redhip-serve: drained")
}
