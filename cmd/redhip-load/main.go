// Command redhip-load is the temporal load generator for redhip-serve:
// it compiles a seeded traffic profile — Poisson or bursty (MMPP-2)
// arrivals shaped into diurnal phases, with cohort mixes of job
// templates — into an exact arrival schedule and drives the HTTP API
// open-loop at that schedule, reporting per-cohort latency percentiles
// and the accepted/deduped/429/503 outcome split as JSON.
//
// Usage:
//
//	redhip-load -url http://localhost:8080 -rate 5 -duration 10s -model bursty -seed 42
//	redhip-load -profile profile.json -report report.json
//	redhip-load -seed 42 -rate 5 -duration 10s -print-schedule   # no server needed
//
// The schedule is a pure function of the profile and seed: two runs
// with identical flags emit identical -print-schedule output to the
// nanosecond, which is what makes load experiments reproducible and
// lets the CI smoke test diff them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"redhip/internal/loadgen"
	"redhip/internal/version"
)

// defaultSpec is the built-in cohort template: a smoke-geometry
// two-scheme job, small enough that a laptop absorbs tens per second.
const defaultSpec = `{"workloads":["mcf"],"schemes":["base","redhip"],"geometry":"smoke"}`

func main() {
	var (
		url       = flag.String("url", "http://localhost:8080", "redhip-serve base URL")
		profPath  = flag.String("profile", "", "JSON profile file (overrides -rate/-duration/-model/-spec)")
		rate      = flag.Float64("rate", 5, "mean arrival rate per second")
		duration  = flag.Duration("duration", 10*time.Second, "load duration")
		model     = flag.String("model", "poisson", "arrival model: poisson or bursty")
		seed      = flag.Uint64("seed", 1, "schedule seed; identical seeds reproduce the schedule exactly")
		spec      = flag.String("spec", defaultSpec, "job spec JSON submitted by the default cohort")
		reportTo  = flag.String("report", "-", "write the JSON report here (- = stdout)")
		printOnly = flag.Bool("print-schedule", false, "print the arrival schedule and exit without sending requests")
		timeout   = flag.Duration("request-timeout", 30*time.Second, "per-request HTTP timeout")
		showVer   = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}

	profile, err := buildProfile(*profPath, *rate, *duration, *model, *seed, *spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redhip-load:", err)
		os.Exit(1)
	}

	if *printOnly {
		schedule, err := loadgen.BuildSchedule(profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "redhip-load:", err)
			os.Exit(1)
		}
		if err := loadgen.WriteSchedule(os.Stdout, schedule); err != nil {
			fmt.Fprintln(os.Stderr, "redhip-load:", err)
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, err := loadgen.Run(ctx, profile, loadgen.Options{
		BaseURL: *url,
		Client:  httpClient(*timeout),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "redhip-load:", err)
		os.Exit(1)
	}

	out := os.Stdout
	if *reportTo != "-" {
		f, err := os.Create(*reportTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "redhip-load:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := loadgen.WriteReport(out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "redhip-load:", err)
		os.Exit(1)
	}
}

func httpClient(timeout time.Duration) *http.Client {
	return &http.Client{Timeout: timeout}
}

// buildProfile loads a profile file, or assembles a single-phase,
// single-cohort profile from the flat flags.
func buildProfile(path string, rate float64, d time.Duration, model string, seed uint64, spec string) (loadgen.Profile, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return loadgen.Profile{}, err
		}
		var p loadgen.Profile
		if err := json.Unmarshal(data, &p); err != nil {
			return loadgen.Profile{}, fmt.Errorf("parse profile %s: %w", path, err)
		}
		if seed != 1 {
			p.Seed = seed // explicit -seed overrides the file
		}
		return p, nil
	}
	return loadgen.Profile{
		Name: "flags",
		Seed: seed,
		Phases: []loadgen.Phase{{
			Name:            "main",
			DurationSeconds: d.Seconds(),
			RatePerSec:      rate,
			Model:           model,
		}},
		Cohorts: []loadgen.Cohort{{
			Name:   "default",
			Weight: 1,
			Spec:   json.RawMessage(spec),
		}},
	}, nil
}
