// Command redhip-router fronts a sharded cluster of redhip-serve
// replicas: it consistent-hashes each job's canonical spec key across
// the replicas that are registered and passing health checks, so
// per-spec dedup and trace/snapshot-cache affinity fall out of the
// hash with no shared state.
//
// Usage:
//
//	redhip-router -addr :8090 -probe-interval 1s -fail-threshold 3
//
// Replicas self-register (redhip-serve -router http://router:8090
// -advertise http://replica:8080) and are admitted to the ring only
// while /readyz passes. A replica that stops answering probes for
// -fail-threshold consecutive attempts is declared dead: its key
// ranges re-hash to the survivors and its unfinished jobs are
// re-submitted to the new owners — idempotent by spec key, since the
// simulation is deterministic and a replica already holding a key's
// result dedups instead of re-running. Registration refuses a ring
// mixing build versions (bit-identical results across replicas are
// only guaranteed at equal code).
//
// Endpoints:
//
//	POST   /v1/jobs                 route a job to its key's owner -> 202 + router id
//	GET    /v1/jobs                 list routed jobs
//	GET    /v1/jobs/{id}            status (replica, re-home count, results)
//	DELETE /v1/jobs/{id}            cancel (forwarded to the owning replica)
//	GET    /v1/jobs/{id}/events     SSE progress, gap-free across re-homes
//	GET    /v1/jobs/{id}/results    the done job's result array, replica bytes verbatim
//	POST   /v1/cluster/register     replica self-registration
//	GET    /v1/cluster/status       members, states, ring size
//	GET    /metrics                 Prometheus text metrics
//	GET    /healthz                 liveness
//	GET    /readyz                  503 until at least one replica is in the ring
//
// Every job-facing response carries X-RedHiP-Replica naming the
// replica involved; replica rejections (429/503) are forwarded with
// the replica's own Retry-After rather than a synthesized one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"redhip/internal/cluster"
	"redhip/internal/version"
)

func main() {
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		seed       = flag.Uint64("seed", 1, "seed for the deterministic probe jitter")
		probeIvl   = flag.Duration("probe-interval", time.Second, "base health-check period per replica (jittered into [0.75,1.25) of it)")
		probeTO    = flag.Duration("probe-timeout", 0, "per-probe timeout (0 = half the interval)")
		failThresh = flag.Int("fail-threshold", 3, "consecutive probe failures that declare a replica dead and re-home its jobs")
		succThresh = flag.Int("success-threshold", 2, "consecutive probe passes a dead replica needs to rejoin the ring")
		vnodes     = flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per replica on the hash ring")
		maxJobs    = flag.Int("max-jobs", 1024, "max resident routed jobs (terminal jobs evict oldest-first)")
		grace      = flag.Duration("shutdown-grace", 10*time.Second, "watcher drain budget on SIGINT/SIGTERM")
		showVer    = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}

	rt, err := cluster.New(cluster.Options{
		Seed:             *seed,
		ProbeInterval:    *probeIvl,
		ProbeTimeout:     *probeTO,
		FailThreshold:    *failThresh,
		SuccessThreshold: *succThresh,
		Vnodes:           *vnodes,
		MaxJobs:          *maxJobs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "redhip-router:", err)
		os.Exit(1)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("redhip-router: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "redhip-router:", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Printf("redhip-router: %s — shutting down (grace %s)", sig, *grace)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Router shutdown does not touch replicas: their jobs keep running,
	// and a restarted router re-learns the membership as replicas
	// re-register.
	if err := rt.Shutdown(ctx); err != nil {
		log.Printf("redhip-router: watcher drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("redhip-router: http shutdown: %v", err)
	}
	log.Printf("redhip-router: stopped")
}
