// Command redhip-trace generates, inspects and summarises the binary
// memory-reference traces the simulator consumes, playing the role of
// the paper's Pin instrumentation stage (Section IV).
//
// Usage:
//
//	redhip-trace -list
//	redhip-trace -gen -workload mcf -n 1000000 -o mcf.rdht
//	redhip-trace -info mcf.rdht
package main

import (
	"flag"
	"fmt"
	"os"

	"redhip/internal/trace"
	"redhip/internal/version"
	"redhip/internal/workload"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the available workloads")
		gen     = flag.Bool("gen", false, "generate a trace file")
		wl      = flag.String("workload", "mcf", "workload to generate (single-program benchmarks only)")
		n       = flag.Int("n", 1_000_000, "number of references to generate")
		scale   = flag.Uint64("scale", 16, "working-set scale divisor (power of two; 1 = paper scale)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (required with -gen)")
		info    = flag.String("info", "", "print statistics for an existing trace file")
		profile = flag.String("profile", "", "JSON workload-profile file to generate from (overrides -workload)")
		emit    = flag.String("emit-profile", "", "write the named built-in workload's profile as JSON to stdout")
		showVer = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}

	switch {
	case *emit != "":
		p, err := workload.ProfileByName(*emit)
		if err != nil {
			fatal(err)
		}
		if err := workload.WriteProfile(os.Stdout, p); err != nil {
			fatal(err)
		}
	case *list:
		fmt.Println("workloads (paper Section IV):")
		for _, name := range workload.BenchmarkNames() {
			kind := "SPEC 2006, multiprogrammed x8"
			switch name {
			case "mix":
				kind = "one SPEC benchmark per core"
			case "pmf":
				kind = "GraphLab probabilistic matrix factorisation, 8 parallel processes"
			case "blas":
				kind = "Graph500 on CombBLAS, 8 parallel processes"
			}
			fmt.Printf("  %-10s %s\n", name, kind)
		}
	case *gen:
		if *out == "" {
			fatal(fmt.Errorf("-gen requires -o"))
		}
		var p *workload.Profile
		var err error
		if *profile != "" {
			f, ferr := os.Open(*profile)
			if ferr != nil {
				fatal(ferr)
			}
			p, err = workload.ReadProfile(f)
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		} else {
			if *wl == "mix" {
				fatal(fmt.Errorf("mix is a multi-source workload; generate its SPEC members individually"))
			}
			p, err = workload.ProfileByName(*wl)
		}
		if err != nil {
			fatal(err)
		}
		src, err := workload.New(p, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		tr := workload.Capture(src, *n)
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, tr); err != nil {
			_ = f.Close() // best-effort cleanup; the write error is the one to report
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, err := os.Stat(*out)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records (%.2f bytes/record) to %s\n",
			len(tr.Records), float64(st.Size())/float64(len(tr.Records)), *out)
	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }() // read-only; close errors carry no data
		tr, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		s := trace.ComputeStats(tr.Records)
		fmt.Printf("trace:          %s (CPI %.2f)\n", tr.Name, tr.CPI)
		fmt.Printf("references:     %d (%.1f%% writes)\n", s.Refs, 100*s.WriteFraction)
		fmt.Printf("unique blocks:  %d (footprint %.2f MiB)\n", s.UniqueBlocks, s.FootprintMiB)
		fmt.Printf("non-mem instrs: %d (gap %.2f per reference)\n", s.NonMemInstrs,
			float64(s.NonMemInstrs)/float64(max(s.Refs, 1)))
		fmt.Printf("address range:  %s .. %s\n", s.MinAddr, s.MaxAddr)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "redhip-trace:", err)
	os.Exit(1)
}
