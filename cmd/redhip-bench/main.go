// Command redhip-bench regenerates the paper's evaluation: every table
// and figure of Section V, printed as aligned text, CSV or markdown.
//
// Usage:
//
//	redhip-bench                         # all figures, scaled geometry
//	redhip-bench -experiment fig6,fig7   # a subset
//	redhip-bench -geometry paper -refs 1000000
//	redhip-bench -workloads mcf,lbm -format csv
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on -pprof
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"redhip/internal/experiment"
	"redhip/internal/sim"
	"redhip/internal/tracestore"
	"redhip/internal/version"
)

func main() {
	var (
		expList   = flag.String("experiment", "all", "comma-separated experiments: all, everything, ablations, table1, fig1, fig6..fig15, ablation-{hash,cbf,banks,replacement,fills,adaptive}")
		geometry  = flag.String("geometry", "scaled", "cache geometry: paper, scaled or smoke")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: the paper's 11)")
		refs      = flag.Uint64("refs", 0, "references per core (default: geometry preset)")
		seed      = flag.Uint64("seed", 1, "workload generator seed")
		format    = flag.String("format", "text", "output format: text, csv, markdown or chart")
		par       = flag.Int("parallel", 0, "concurrent simulations (default: NumCPU)")
		verbose   = flag.Bool("v", false, "print per-run progress to stderr")
		verify    = flag.Bool("verify", false, "check the paper's qualitative claims against the regenerated data and exit nonzero on failure")

		cpuProfile      = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile      = flag.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr       = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) while running")
		traceDir        = flag.String("trace-dir", "", "enable the trace store's mmap-backed disk tier: streams evicted from RAM spill to an unlinked temp file in this directory and replay zero-copy")
		traceBudget     = flag.Uint64("trace-budget", 0, "trace store RAM budget in bytes (default: tracestore.DefaultBudgetBytes); tiny values force every stream through the disk tier")
		traceDiskBudget = flag.Uint64("trace-disk-budget", 0, "disk tier budget in bytes (default: tracestore.DefaultDiskBudgetBytes); needs -trace-dir")

		baseline   = flag.String("bench-baseline", "", "measure per-scheme simulation throughput at the pinned smoke geometry, write it to this JSON file and exit")
		compare    = flag.Bool("bench-compare", false, "compare two benchmark JSON files (old new; BENCH_baseline.json or BENCH_sweep.json, schema sniffed) and exit nonzero on a refs/sec regression beyond -bench-tolerance")
		tolerance  = flag.Float64("bench-tolerance", 0.10, "allowed fractional refs/sec drop per scheme for -bench-compare")
		sweepBench = flag.String("sweep-bench", "", "measure multi-scheme sweep throughput with and without the materialise-once trace cache, write the comparison to this JSON file and exit")
		showVer    = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()

	if *showVer {
		fmt.Println(version.String())
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-bench-compare needs exactly two benchmark files, got %d args", flag.NArg()))
		}
		if err := compareBench(flag.Arg(0), flag.Arg(1), *tolerance); err != nil {
			fatal(err)
		}
		fmt.Println("no regression")
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		// Registered before StopCPUProfile so LIFO ordering closes the
		// file after the profile stops writing to it.
		defer func() { _ = f.Close() }()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle live objects so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				_ = f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err) // a failed close can truncate the profile
			}
		}()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "redhip-bench: pprof server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof server on http://%s/debug/pprof/\n", *pprofAddr)
	}

	if *baseline != "" {
		if err := writeBaseline(*baseline); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *baseline)
		return
	}
	if *sweepBench != "" {
		if err := writeSweepBench(*sweepBench); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *sweepBench)
		return
	}

	cfg, err := configFor(*geometry)
	if err != nil {
		fatal(err)
	}
	if *refs > 0 {
		cfg.RefsPerCore = *refs
	}
	opts := experiment.Options{Base: cfg, Seed: *seed, Parallelism: *par}
	if *traceDir != "" || *traceBudget != 0 {
		store, err := tracestore.NewWithConfig(tracestore.Config{
			BudgetBytes:     *traceBudget,
			DiskDir:         *traceDir,
			DiskBudgetBytes: *traceDiskBudget,
		})
		if err != nil {
			fatal(err)
		}
		defer func() { _ = store.Close() }()
		opts.TraceCache = store
	} else if *traceDiskBudget != 0 {
		fatal(fmt.Errorf("-trace-disk-budget needs -trace-dir"))
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	if *verbose {
		opts.Progress = func(m string) { fmt.Fprintln(os.Stderr, m) }
	}
	runner, err := experiment.NewRunner(opts)
	if err != nil {
		fatal(err)
	}

	if *verify {
		checks, err := runner.Verify()
		if err != nil {
			fatal(err)
		}
		failed := 0
		for _, c := range checks {
			verdict := "PASS"
			if !c.Pass {
				verdict = "FAIL"
				failed++
			}
			fmt.Printf("%-4s  %s", verdict, c.Name)
			if c.Detail != "" {
				fmt.Printf("  (%s)", c.Detail)
			}
			fmt.Println()
		}
		if failed > 0 {
			fatal(fmt.Errorf("%d/%d claims failed", failed, len(checks)))
		}
		fmt.Printf("all %d claims hold\n", len(checks))
		return
	}

	figs, err := selectFigures(runner, *expList)
	if err != nil {
		fatal(err)
	}
	for i, f := range figs {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s ===\n", f.ID)
		if f.Caption != "" {
			fmt.Printf("%s\n\n", f.Caption)
		}
		switch *format {
		case "text":
			fmt.Print(f.Table.String())
		case "csv":
			fmt.Print(f.Table.CSV())
		case "markdown":
			fmt.Print(f.Table.Markdown())
		case "chart":
			// Chart the last column (the per-figure average).
			fmt.Print(f.Table.Chart(len(f.Table.Columns) - 1).String())
		default:
			fatal(fmt.Errorf("unknown format %q", *format))
		}
	}
}

func configFor(geometry string) (sim.Config, error) {
	switch geometry {
	case "paper":
		c := sim.Paper()
		// The paper simulates 500M refs/core; that is hours of wall
		// time, so default to a tractable slice and let -refs raise it.
		c.RefsPerCore = 2_000_000
		return c, nil
	case "scaled":
		return sim.Scaled(), nil
	case "smoke":
		return sim.Smoke(), nil
	default:
		return sim.Config{}, fmt.Errorf("unknown geometry %q (want paper, scaled or smoke)", geometry)
	}
}

func selectFigures(r *experiment.Runner, list string) ([]*experiment.Figure, error) {
	switch list {
	case "all":
		return r.All()
	case "ablations":
		return r.Ablations()
	case "everything":
		figs, err := r.All()
		if err != nil {
			return nil, err
		}
		abl, err := r.Ablations()
		if err != nil {
			return nil, err
		}
		return append(figs, abl...), nil
	}
	builders := map[string]func() (*experiment.Figure, error){
		"table1": func() (*experiment.Figure, error) {
			return &experiment.Figure{ID: "Table I", Caption: "Architecture parameters.", Table: r.TableI()}, nil
		},
		"fig1":                 func() (*experiment.Figure, error) { return r.Fig1CacheSizeTrend(), nil },
		"fig1-energy":          r.Fig1EnergyBreakdown,
		"fig6":                 r.Fig6Speedup,
		"fig7":                 r.Fig7DynamicEnergy,
		"fig8":                 r.Fig8Metric,
		"fig9":                 r.Fig9HitRatesBase,
		"fig10":                r.Fig10HitRatesReDHiP,
		"fig11":                r.Fig11TableSize,
		"fig12":                r.Fig12RecalPeriod,
		"fig13":                r.Fig13Inclusion,
		"fig14":                r.Fig14PrefetchSpeedup,
		"fig15":                r.Fig15PrefetchEnergy,
		"ablation-hash":        r.AblationHash,
		"ablation-cbf":         r.AblationCBFCounters,
		"ablation-banks":       r.AblationBanks,
		"ablation-replacement": r.AblationReplacement,
		"ablation-fills":       r.AblationFills,
		"ablation-adaptive":    r.AblationAdaptive,
		"ablation-memlat":      r.AblationMemoryLatency,
	}
	var figs []*experiment.Figure
	for _, name := range strings.Split(list, ",") {
		b, ok := builders[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", name)
		}
		f, err := b()
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	return figs, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "redhip-bench:", err)
	os.Exit(1)
}
