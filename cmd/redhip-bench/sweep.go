package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"redhip/internal/experiment"
	"redhip/internal/sim"
	"redhip/internal/tracestore"
)

// The sweep benchmark measures what the trace store exists for: one
// workload simulated under every scheme, end to end. Three arms:
//
//   - live: every scheme regenerates the reference stream from scratch
//     (the pre-store behaviour, forced with DisableTraceCache).
//   - cold: a fresh store — the sweep pays one materialisation, then
//     replays it for the remaining schemes.
//   - warm: the store already holds the stream, the regime figure-scale
//     sessions run in (every sensitivity sweep — PT size, recal period,
//     inclusion — re-simulates the same (workload, seed, scale, refs)
//     key dozens of times, so the one materialisation is amortised to
//     nothing).
//
// Each repeat uses a fresh runner so result memoisation cannot short-
// circuit the simulations; the warm arm shares one caller-owned store
// across runners. Arms are interleaved within each repeat so slow
// drift on a shared machine biases neither side, and best-of-N is
// reported per arm (the minimum is the least noise-contaminated
// estimate). Everything runs single-worker so the ratio isolates
// redundant generation rather than scheduler luck.
const (
	sweepWorkload    = "soplex"
	sweepRefsPerCore = 50_000
	sweepRepeats     = 9
)

// sweepArm is one side of the comparison, best-of-N end-to-end.
type sweepArm struct {
	WallNanos     int64   `json:"wall_nanos"`
	RefsPerSec    float64 `json:"refs_per_sec"`
	GenerateNanos int64   `json:"generate_nanos"`
	SimulateNanos int64   `json:"simulate_nanos"`
	// Cache counters (cached arms only), snapshotted after the arm's
	// best repeat: Misses is the number of generations that actually
	// ran — 1 for the whole benchmark when the store does its job.
	Cache *tracestore.Stats `json:"cache,omitempty"`
}

// sweepFile is the sweep-throughput JSON schema, uploaded next to
// BENCH_baseline.json in CI.
type sweepFile struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	Geometry    string   `json:"geometry"`
	Workload    string   `json:"workload"`
	RefsPerCore uint64   `json:"refs_per_core"`
	Schemes     []string `json:"schemes"`
	Repeats     int      `json:"repeats"`
	Live        sweepArm `json:"live"`
	Cold        sweepArm `json:"cold"`
	Warm        sweepArm `json:"warm"`
	// ColdSpeedup is live/cold wall time: the gain when the sweep
	// itself pays the one materialisation. WarmSpeedup is live/warm:
	// the steady-state gain once the session's store holds the stream.
	ColdSpeedup float64 `json:"cold_speedup"`
	WarmSpeedup float64 `json:"warm_speedup"`
}

// writeSweepBench runs the three arms and writes the comparison JSON.
func writeSweepBench(path string) error {
	cfg := sim.Smoke()
	cfg.RefsPerCore = sweepRefsPerCore
	schemes := sim.Schemes()
	totalRefs := uint64(cfg.Cores) * (cfg.WarmupRefsPerCore + cfg.RefsPerCore) * uint64(len(schemes))

	// runOnce times one full sweep on a fresh runner; a nil store means
	// live regeneration.
	runOnce := func(store *tracestore.Store) (int64, *experiment.Runner, []*sim.Result, error) {
		runner, err := experiment.NewRunner(experiment.Options{
			Base:              cfg,
			Seed:              1,
			Workloads:         []string{sweepWorkload},
			Parallelism:       1,
			DisableTraceCache: store == nil,
			TraceCache:        store,
		})
		if err != nil {
			return 0, nil, nil, err
		}
		start := time.Now()
		res, err := runner.SchemeSweep(sweepWorkload, schemes)
		return time.Since(start).Nanoseconds(), runner, res, err
	}

	// measure folds one repeat into the arm's best-of record, returning
	// whether this repeat was the new best.
	measure := func(arm *sweepArm, wall int64, r *experiment.Runner) bool {
		if arm.WallNanos != 0 && wall >= arm.WallNanos {
			return false
		}
		gen, simN := r.PhaseNanos()
		*arm = sweepArm{
			WallNanos:     wall,
			RefsPerSec:    float64(totalRefs) / (float64(wall) / 1e9),
			GenerateNanos: gen,
			SimulateNanos: simN,
		}
		if st, ok := r.TraceCacheStats(); ok {
			arm.Cache = &st
		}
		return true
	}

	var live, cold, warm sweepArm
	var liveRes, warmRes []*sim.Result
	warmStore := tracestore.New(0)

	// Warm the shared store once, untimed, so every warm repeat replays.
	if _, _, _, err := runOnce(warmStore); err != nil {
		return fmt.Errorf("store warmup: %w", err)
	}

	for i := 0; i < sweepRepeats; i++ {
		wall, r, res, err := runOnce(nil)
		if err != nil {
			return fmt.Errorf("live arm: %w", err)
		}
		if measure(&live, wall, r) {
			liveRes = res
		}

		wall, r, _, err = runOnce(tracestore.New(0))
		if err != nil {
			return fmt.Errorf("cold arm: %w", err)
		}
		measure(&cold, wall, r)

		wall, r, res, err = runOnce(warmStore)
		if err != nil {
			return fmt.Errorf("warm arm: %w", err)
		}
		if measure(&warm, wall, r) {
			warmRes = res
		}
	}

	// Replay must be invisible in the results, not just fast.
	for i, sc := range schemes {
		if liveRes[i].String() != warmRes[i].String() {
			return fmt.Errorf("%s: cached sweep diverged from live generation:\n  live:   %s\n  cached: %s",
				sc, liveRes[i], warmRes[i])
		}
	}
	if cold.Cache == nil || cold.Cache.Misses != 1 {
		return fmt.Errorf("cold store did not generate exactly once: %+v", cold.Cache)
	}
	if warm.Cache == nil || warm.Cache.Misses != 1 {
		return fmt.Errorf("warm store did not generate exactly once for the whole benchmark: %+v", warm.Cache)
	}

	out := sweepFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Geometry:    "smoke",
		Workload:    sweepWorkload,
		RefsPerCore: sweepRefsPerCore,
		Repeats:     sweepRepeats,
		Live:        live,
		Cold:        cold,
		Warm:        warm,
		ColdSpeedup: float64(live.WallNanos) / float64(cold.WallNanos),
		WarmSpeedup: float64(live.WallNanos) / float64(warm.WallNanos),
	}
	for _, sc := range schemes {
		out.Schemes = append(out.Schemes, sc.String())
	}
	fmt.Fprintf(os.Stderr,
		"sweep %s x%d schemes: live %.3fs, cold %.3fs (%.2fx), warm %.3fs (%.2fx); warm cache: %d miss, %d hit\n",
		sweepWorkload, len(schemes),
		float64(live.WallNanos)/1e9,
		float64(cold.WallNanos)/1e9, out.ColdSpeedup,
		float64(warm.WallNanos)/1e9, out.WarmSpeedup,
		warm.Cache.Misses, warm.Cache.Hits)

	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
