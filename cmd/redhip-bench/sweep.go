package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"redhip/internal/experiment"
	"redhip/internal/sim"
	"redhip/internal/simstate"
	"redhip/internal/tracestore"
)

// The sweep benchmark measures what the trace store and the
// single-pass engine exist for: one workload simulated under every
// scheme, end to end. Four arms:
//
//   - live: every scheme regenerates the reference stream from scratch
//     (the pre-store behaviour: DisableTraceCache + DisableSinglePass).
//   - cold: a fresh store — the sweep pays one materialisation, then
//     replays it for the remaining schemes (per-scheme simulation).
//   - warm: the store already holds the stream, the regime figure-scale
//     sessions run in (every sensitivity sweep — PT size, recal period,
//     inclusion — re-simulates the same (workload, seed, scale, refs)
//     key dozens of times, so the one materialisation is amortised to
//     nothing). Still one sim.Run per scheme.
//   - multi: warm store plus the single-pass lockstep engine — one
//     trace pass drives every scheme's back half concurrently
//     (sim.RunMulti through the runner's default SchemeSweep path).
//     On a multi-core machine this is the arm that shows the engine's
//     speedup; on one core it measures the lockstep overhead.
//   - snap: multi plus a warmed snapshot store — every scheme's
//     warm state was captured once (untimed), so each repeat restores
//     the engines at the warmup/measure boundary and simulates only
//     the measure window. With warmup at 50% of the references this
//     arm's ceiling is ~2x over multi; it is the regime measure-phase
//     ablations (recal period, adaptive knobs, measure length) run in.
//
// Each repeat uses a fresh runner so result memoisation cannot short-
// circuit the simulations; the warm and multi arms share one
// caller-owned store across runners. Arms are interleaved within each
// repeat so slow drift on a shared machine biases neither side, and
// best-of-N is reported per arm (the minimum is the least
// noise-contaminated estimate). The per-scheme arms run single-worker
// so their ratios isolate redundant generation rather than scheduler
// luck; the multi arm's intra-pass parallelism is the machine
// (IntraParallelism 0 = auto with Parallelism 1).
//
// Cache counters are per-arm DELTAS of the store's cumulative stats
// (tracestore.Stats.Delta), snapshotted around the best repeat's run.
// The raw counters accumulate for the store's lifetime — comparing a
// warm store's lifetime MaterializeNanos against a cold store's single
// fill once made warm generation look slower than cold.
const (
	sweepWorkload    = "soplex"
	sweepRefsPerCore = 50_000
	// sweepWarmupPerCore puts the warmup/measure split at 50% — the
	// warmup-heavy shape where the snap arm's skipped warmup walk is
	// half the simulation.
	sweepWarmupPerCore = 50_000
	sweepRepeats       = 9
)

// sweepArm is one side of the comparison, best-of-N end-to-end.
type sweepArm struct {
	WallNanos     int64   `json:"wall_nanos"`
	RefsPerSec    float64 `json:"refs_per_sec"`
	GenerateNanos int64   `json:"generate_nanos"`
	SimulateNanos int64   `json:"simulate_nanos"`
	// Cache counters (cached arms only): the DELTA the arm's best
	// repeat moved the store's counters by. Misses is the number of
	// generations that repeat actually ran — 1 for the cold arm, 0 for
	// the warm and multi arms.
	Cache *tracestore.Stats `json:"cache,omitempty"`
	// Snapshots (snap arm only) is the warm-state store's counter delta
	// over the best repeat: all Hits and Restores, no Misses, because
	// the store was warmed before timing started.
	Snapshots *simstate.StoreStats `json:"snapshots,omitempty"`
}

// sweepFile is the sweep-throughput JSON schema, uploaded next to
// BENCH_baseline.json in CI.
type sweepFile struct {
	GeneratedAt   string   `json:"generated_at"`
	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	NumCPU        int      `json:"num_cpu"`
	Geometry      string   `json:"geometry"`
	Workload      string   `json:"workload"`
	RefsPerCore   uint64   `json:"refs_per_core"`
	WarmupPerCore uint64   `json:"warmup_refs_per_core"`
	Schemes       []string `json:"schemes"`
	Repeats       int      `json:"repeats"`
	Live          sweepArm `json:"live"`
	Cold          sweepArm `json:"cold"`
	Warm          sweepArm `json:"warm"`
	Multi         sweepArm `json:"multi"`
	Snap          sweepArm `json:"snap"`
	// ColdSpeedup is live/cold wall time: the gain when the sweep
	// itself pays the one materialisation. WarmSpeedup is live/warm:
	// the steady-state gain once the session's store holds the stream.
	ColdSpeedup float64 `json:"cold_speedup"`
	WarmSpeedup float64 `json:"warm_speedup"`
	// MultiSpeedup is live/multi: the combined store + single-pass
	// gain. MultiWarmSpeedup is warm/multi: the single-pass engine's
	// contribution alone, with the store's benefit already banked in
	// both arms — the number that scales with cores.
	MultiSpeedup     float64 `json:"multi_speedup"`
	MultiWarmSpeedup float64 `json:"multi_warm_speedup"`
	// SnapSpeedup is multi/snap: the snapshot branch layer's
	// contribution alone — warmup skipped, everything else identical.
	SnapSpeedup float64 `json:"snap_speedup"`
}

// writeSweepBench runs the five arms and writes the comparison JSON.
func writeSweepBench(path string) error {
	cfg := sim.Smoke()
	cfg.RefsPerCore = sweepRefsPerCore
	cfg.WarmupRefsPerCore = sweepWarmupPerCore
	schemes := sim.Schemes()
	totalRefs := uint64(cfg.Cores) * (cfg.WarmupRefsPerCore + cfg.RefsPerCore) * uint64(len(schemes))
	// The snap arm walks only the measure window; its throughput is
	// still normalised to the refs the sweep answers for.

	// runOnce times one full sweep on a fresh runner; a nil store means
	// live regeneration. singlePass selects the lockstep engine (the
	// runner default) versus the legacy one-sim.Run-per-scheme path the
	// live/cold/warm arms measure; snaps enables warm-state branching.
	// The returned Stats is the store's counter delta across the run
	// (zero when store is nil).
	runOnce := func(store *tracestore.Store, singlePass bool, snaps *simstate.Store) (int64, tracestore.Stats, *experiment.Runner, []*sim.Result, error) {
		runner, err := experiment.NewRunner(experiment.Options{
			Base:              cfg,
			Seed:              1,
			Workloads:         []string{sweepWorkload},
			Parallelism:       1,
			DisableTraceCache: store == nil,
			TraceCache:        store,
			DisableSinglePass: !singlePass,
			SnapshotCache:     snaps,
		})
		if err != nil {
			return 0, tracestore.Stats{}, nil, nil, err
		}
		var before tracestore.Stats
		if store != nil {
			before = store.Stats()
		}
		start := time.Now()
		res, err := runner.SchemeSweep(sweepWorkload, schemes)
		wall := time.Since(start).Nanoseconds()
		var delta tracestore.Stats
		if store != nil {
			delta = store.Stats().Delta(before)
		}
		return wall, delta, runner, res, err
	}

	// measure folds one repeat into the arm's best-of record, returning
	// whether this repeat was the new best.
	measure := func(arm *sweepArm, wall int64, delta tracestore.Stats, cached bool, r *experiment.Runner) bool {
		if arm.WallNanos != 0 && wall >= arm.WallNanos {
			return false
		}
		gen, simN := r.PhaseNanos()
		*arm = sweepArm{
			WallNanos:     wall,
			RefsPerSec:    float64(totalRefs) / (float64(wall) / 1e9),
			GenerateNanos: gen,
			SimulateNanos: simN,
		}
		if cached {
			arm.Cache = &delta
		}
		return true
	}

	var live, cold, warm, multi, snap sweepArm
	var liveRes, warmRes, multiRes, snapRes []*sim.Result
	warmStore := tracestore.New(0)
	snapStore := simstate.NewStore(0)

	// Warm the shared store once, untimed, so every warm repeat replays;
	// the same pass captures every scheme's warm-state blob, so every
	// snap repeat restores.
	if _, _, _, _, err := runOnce(warmStore, true, snapStore); err != nil {
		return fmt.Errorf("store warmup: %w", err)
	}
	if st := snapStore.Stats(); st.Puts != uint64(len(schemes)) {
		return fmt.Errorf("snapshot warmup captured %d blobs, want %d", st.Puts, len(schemes))
	}

	for i := 0; i < sweepRepeats; i++ {
		wall, delta, r, res, err := runOnce(nil, false, nil)
		if err != nil {
			return fmt.Errorf("live arm: %w", err)
		}
		if measure(&live, wall, delta, false, r) {
			liveRes = res
		}

		wall, delta, r, _, err = runOnce(tracestore.New(0), false, nil)
		if err != nil {
			return fmt.Errorf("cold arm: %w", err)
		}
		measure(&cold, wall, delta, true, r)

		wall, delta, r, res, err = runOnce(warmStore, false, nil)
		if err != nil {
			return fmt.Errorf("warm arm: %w", err)
		}
		if measure(&warm, wall, delta, true, r) {
			warmRes = res
		}

		wall, delta, r, res, err = runOnce(warmStore, true, nil)
		if err != nil {
			return fmt.Errorf("multi arm: %w", err)
		}
		if measure(&multi, wall, delta, true, r) {
			multiRes = res
		}

		snapBefore := snapStore.Stats()
		wall, delta, r, res, err = runOnce(warmStore, true, snapStore)
		if err != nil {
			return fmt.Errorf("snap arm: %w", err)
		}
		if measure(&snap, wall, delta, true, r) {
			snapRes = res
			snapDelta := snapStore.Stats().Delta(snapBefore)
			snap.Snapshots = &snapDelta
		}
	}

	// Replay, the lockstep engine and the snapshot branch must be
	// invisible in the results, not just fast.
	for i, sc := range schemes {
		if liveRes[i].String() != warmRes[i].String() {
			return fmt.Errorf("%s: cached sweep diverged from live generation:\n  live:   %s\n  cached: %s",
				sc, liveRes[i], warmRes[i])
		}
		if liveRes[i].String() != multiRes[i].String() {
			return fmt.Errorf("%s: single-pass sweep diverged from live generation:\n  live:  %s\n  multi: %s",
				sc, liveRes[i], multiRes[i])
		}
		if liveRes[i].String() != snapRes[i].String() {
			return fmt.Errorf("%s: snapshot-branched sweep diverged from live generation:\n  live: %s\n  snap: %s",
				sc, liveRes[i], snapRes[i])
		}
	}
	if cold.Cache == nil || cold.Cache.Misses != 1 {
		return fmt.Errorf("cold arm did not generate exactly once: %+v", cold.Cache)
	}
	if warm.Cache == nil || warm.Cache.Misses != 0 || warm.Cache.MaterializeNanos != 0 {
		return fmt.Errorf("warm arm generated despite the warmed store: %+v", warm.Cache)
	}
	if multi.Cache == nil || multi.Cache.Misses != 0 || multi.Cache.Hits != 1 {
		return fmt.Errorf("multi arm should replay with exactly one store hit per pass: %+v", multi.Cache)
	}
	if snap.Snapshots == nil || snap.Snapshots.Misses != 0 || snap.Snapshots.Hits != uint64(len(schemes)) {
		return fmt.Errorf("snap arm should restore every scheme from the warmed snapshot store: %+v", snap.Snapshots)
	}
	if snap.Snapshots.Restores != uint64(len(schemes)) {
		return fmt.Errorf("snap arm recorded %d restores, want %d", snap.Snapshots.Restores, len(schemes))
	}

	out := sweepFile{
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:        runtime.Version(),
		GOOS:             runtime.GOOS,
		GOARCH:           runtime.GOARCH,
		NumCPU:           runtime.NumCPU(),
		Geometry:         "smoke",
		Workload:         sweepWorkload,
		RefsPerCore:      sweepRefsPerCore,
		WarmupPerCore:    sweepWarmupPerCore,
		Repeats:          sweepRepeats,
		Live:             live,
		Cold:             cold,
		Warm:             warm,
		Multi:            multi,
		Snap:             snap,
		ColdSpeedup:      float64(live.WallNanos) / float64(cold.WallNanos),
		WarmSpeedup:      float64(live.WallNanos) / float64(warm.WallNanos),
		MultiSpeedup:     float64(live.WallNanos) / float64(multi.WallNanos),
		MultiWarmSpeedup: float64(warm.WallNanos) / float64(multi.WallNanos),
		SnapSpeedup:      float64(multi.WallNanos) / float64(snap.WallNanos),
	}
	for _, sc := range schemes {
		out.Schemes = append(out.Schemes, sc.String())
	}
	fmt.Fprintf(os.Stderr,
		"sweep %s x%d schemes: live %.3fs, cold %.3fs (%.2fx), warm %.3fs (%.2fx), multi %.3fs (%.2fx live, %.2fx warm), snap %.3fs (%.2fx multi)\n",
		sweepWorkload, len(schemes),
		float64(live.WallNanos)/1e9,
		float64(cold.WallNanos)/1e9, out.ColdSpeedup,
		float64(warm.WallNanos)/1e9, out.WarmSpeedup,
		float64(multi.WallNanos)/1e9, out.MultiSpeedup, out.MultiWarmSpeedup,
		float64(snap.WallNanos)/1e9, out.SnapSpeedup)

	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
