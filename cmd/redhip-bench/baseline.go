package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"redhip/internal/sim"
	"redhip/internal/workload"
)

// The baseline measurement is deliberately pinned — same geometry,
// workload and reference count in every PR — so that BENCH_baseline.json
// files from different commits are directly comparable. Traces are
// captured once and replayed, so workload generation cost is excluded
// and the number isolates the simulation core.
const (
	baselineWorkload    = "mcf"
	baselineRefsPerCore = 50_000
	baselineRepeats     = 5
)

// baselineEntry is one scheme's best-of-N throughput measurement.
type baselineEntry struct {
	Scheme     string  `json:"scheme"`
	Refs       uint64  `json:"refs"`
	RefsPerSec float64 `json:"refs_per_sec"`
	WallNanos  int64   `json:"wall_nanos"`
	AllocBytes uint64  `json:"alloc_bytes"`
	Mallocs    uint64  `json:"mallocs"`
}

// baselineFile is the BENCH_baseline.json schema. Environment fields
// are recorded so a regression can be told apart from a machine change.
type baselineFile struct {
	GeneratedAt string          `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	NumCPU      int             `json:"num_cpu"`
	Geometry    string          `json:"geometry"`
	Workload    string          `json:"workload"`
	RefsPerCore uint64          `json:"refs_per_core"`
	Repeats     int             `json:"repeats"`
	Schemes     []baselineEntry `json:"schemes"`
}

// writeBaseline measures single-run simulation throughput per scheme at
// the smoke geometry and writes the JSON file benchmark tracking diffs
// against. Best-of-N (not mean) is reported: the minimum wall time is
// the least noise-contaminated estimate on a shared machine.
func writeBaseline(path string) error {
	cfg := sim.Smoke()
	cfg.RefsPerCore = baselineRefsPerCore

	gen, err := workload.Sources(baselineWorkload, cfg.Cores, cfg.WorkloadScale, 1)
	if err != nil {
		return err
	}
	srcs := make([]workload.Source, cfg.Cores)
	replays := make([]*workload.TraceSource, cfg.Cores)
	for c := range srcs {
		replays[c] = workload.FromTrace(workload.Capture(gen[c], baselineRefsPerCore))
		srcs[c] = replays[c]
	}

	out := baselineFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Geometry:    "smoke",
		Workload:    baselineWorkload,
		RefsPerCore: baselineRefsPerCore,
		Repeats:     baselineRepeats,
	}
	for _, scheme := range []sim.Scheme{sim.Base, sim.ReDHiP, sim.CBF, sim.Oracle} {
		c := cfg
		c.Scheme = scheme
		var best *sim.Result
		for i := 0; i < baselineRepeats; i++ {
			for _, r := range replays {
				r.Rewind()
			}
			res, err := sim.Run(c, srcs)
			if err != nil {
				return fmt.Errorf("baseline %s: %w", scheme, err)
			}
			if best == nil || res.Perf.WallNanos < best.Perf.WallNanos {
				best = res
			}
		}
		out.Schemes = append(out.Schemes, baselineEntry{
			Scheme:     scheme.String(),
			Refs:       best.Refs,
			RefsPerSec: best.Perf.RefsPerSec,
			WallNanos:  best.Perf.WallNanos,
			AllocBytes: best.Perf.AllocBytes,
			Mallocs:    best.Perf.Mallocs,
		})
		fmt.Fprintf(os.Stderr, "baseline %-7s %12.0f refs/s  (%d mallocs, %d B)\n",
			scheme, best.Perf.RefsPerSec, best.Perf.Mallocs, best.Perf.AllocBytes)
	}

	data, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
