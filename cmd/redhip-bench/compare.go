package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// compareBench diffs two benchmark JSON files and fails on regressions
// beyond tolerance. The file schema is sniffed: BENCH_baseline.json
// (per-scheme entries) and BENCH_sweep.json (per-arm sweep throughput)
// both route through the same -bench-compare flag, so CI gates the
// single-pass sweep path with the same step that gates per-scheme
// throughput. Both files must be the same schema.
func compareBench(oldPath, newPath string, tolerance float64) error {
	oldSweep, err := sniffSweep(oldPath)
	if err != nil {
		return err
	}
	newSweep, err := sniffSweep(newPath)
	if err != nil {
		return err
	}
	if oldSweep != newSweep {
		return fmt.Errorf("mixed schemas: %s and %s are not the same kind of benchmark file", oldPath, newPath)
	}
	if oldSweep {
		return compareSweeps(oldPath, newPath, tolerance)
	}
	return compareBaselines(oldPath, newPath, tolerance)
}

// sniffSweep reports whether the file is a sweep file (arm objects
// under "live"/"warm") rather than a per-scheme baseline (entry
// objects under "schemes").
func sniffSweep(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var probe struct {
		Live *sweepArm `json:"live"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false, fmt.Errorf("%s: %w", path, err)
	}
	return probe.Live != nil, nil
}

// compareSweeps diffs two BENCH_sweep.json files arm by arm on
// refs/sec, with the same drop tolerance as the per-scheme compare.
// Arms the old file lacks (e.g. "multi" before the single-pass engine)
// are reported but not judged; arms the old file has and the new file
// dropped fail — a silently vanished arm is how a regression hides.
func compareSweeps(oldPath, newPath string, tolerance float64) error {
	oldFile, err := readSweep(oldPath)
	if err != nil {
		return err
	}
	newFile, err := readSweep(newPath)
	if err != nil {
		return err
	}
	if oldFile.Workload != newFile.Workload || oldFile.RefsPerCore != newFile.RefsPerCore ||
		oldFile.Geometry != newFile.Geometry || oldFile.WarmupPerCore != newFile.WarmupPerCore {
		return fmt.Errorf("sweeps not comparable: %s/%s/%d+%d refs vs %s/%s/%d+%d refs",
			oldFile.Geometry, oldFile.Workload, oldFile.WarmupPerCore, oldFile.RefsPerCore,
			newFile.Geometry, newFile.Workload, newFile.WarmupPerCore, newFile.RefsPerCore)
	}
	arms := []struct {
		name     string
		old, new *sweepArm
	}{
		{"live", &oldFile.Live, &newFile.Live},
		{"cold", &oldFile.Cold, &newFile.Cold},
		{"warm", &oldFile.Warm, &newFile.Warm},
		{"multi", &oldFile.Multi, &newFile.Multi},
		{"snap", &oldFile.Snap, &newFile.Snap},
	}
	var regressions []string
	for _, a := range arms {
		switch {
		case a.old.WallNanos == 0 && a.new.WallNanos == 0:
			continue
		case a.old.WallNanos == 0:
			fmt.Printf("%-8s %12s -> %12.0f refs/s  (new arm, not compared)\n", a.name, "-", a.new.RefsPerSec)
			continue
		case a.new.WallNanos == 0:
			regressions = append(regressions, fmt.Sprintf("%s: missing from %s", a.name, newPath))
			continue
		}
		delta := 0.0
		if a.old.RefsPerSec > 0 {
			delta = a.new.RefsPerSec/a.old.RefsPerSec - 1
		}
		verdict := "ok"
		if delta < -tolerance {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f refs/s (%+.1f%%, tolerance -%.0f%%)",
					a.name, a.old.RefsPerSec, a.new.RefsPerSec, 100*delta, 100*tolerance))
		}
		fmt.Printf("%-8s %12.0f -> %12.0f refs/s  %+6.1f%%  %s\n",
			a.name, a.old.RefsPerSec, a.new.RefsPerSec, 100*delta, verdict)
	}

	// The cross-arm speedup ratios (multi over warm, snap over multi)
	// measure mechanisms — intra-pass parallelism and the warm-state
	// branch — whose payoff depends on the host: on one CPU the
	// lockstep engine has no cores to spread over and its ratio sits
	// near (or below) 1.0, so judging it there fails every healthy
	// run. Judge the ratios only when both files come from the same
	// multi-core CPU count; otherwise report them informationally.
	ratios := []struct {
		name     string
		old, new float64
	}{
		{"multi_warm_speedup", oldFile.MultiWarmSpeedup, newFile.MultiWarmSpeedup},
		{"snap_speedup", oldFile.SnapSpeedup, newFile.SnapSpeedup},
	}
	judge := oldFile.NumCPU == newFile.NumCPU && newFile.NumCPU > 1
	for _, r := range ratios {
		switch {
		case r.old == 0 && r.new == 0:
			continue
		case r.old == 0:
			fmt.Printf("%-18s %8s -> %8.2fx  (new ratio, not compared)\n", r.name, "-", r.new)
			continue
		case r.new == 0:
			regressions = append(regressions, fmt.Sprintf("%s: missing from %s", r.name, newPath))
			continue
		case !judge:
			fmt.Printf("%-18s %8.2fx -> %8.2fx  (num_cpu %d vs %d, informational)\n",
				r.name, r.old, r.new, oldFile.NumCPU, newFile.NumCPU)
			continue
		}
		delta := r.new/r.old - 1
		verdict := "ok"
		if delta < -tolerance {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.2fx -> %.2fx (%+.1f%%, tolerance -%.0f%%)",
					r.name, r.old, r.new, 100*delta, 100*tolerance))
		}
		fmt.Printf("%-18s %8.2fx -> %8.2fx  %+6.1f%%  %s\n", r.name, r.old, r.new, 100*delta, verdict)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d arm(s) regressed:\n  %s", len(regressions), joinLines(regressions))
	}
	return nil
}

func readSweep(path string) (*sweepFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f sweepFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Live.WallNanos == 0 {
		return nil, fmt.Errorf("%s: no live arm measurement", path)
	}
	return &f, nil
}

// compareBaselines diffs two BENCH_baseline.json files scheme by scheme
// and fails when any scheme's refs/sec dropped by more than tolerance
// (a fraction: 0.10 = 10%). Schemes present in old but missing from new
// fail too — a silently dropped measurement is how a regression hides;
// schemes new adds are reported but not judged (no reference point).
func compareBaselines(oldPath, newPath string, tolerance float64) error {
	oldFile, err := readBaseline(oldPath)
	if err != nil {
		return err
	}
	newFile, err := readBaseline(newPath)
	if err != nil {
		return err
	}
	if oldFile.Workload != newFile.Workload || oldFile.RefsPerCore != newFile.RefsPerCore || oldFile.Geometry != newFile.Geometry {
		return fmt.Errorf("baselines not comparable: %s/%s/%d refs vs %s/%s/%d refs",
			oldFile.Geometry, oldFile.Workload, oldFile.RefsPerCore,
			newFile.Geometry, newFile.Workload, newFile.RefsPerCore)
	}

	newBy := make(map[string]baselineEntry, len(newFile.Schemes))
	for _, e := range newFile.Schemes {
		newBy[e.Scheme] = e
	}
	seen := make(map[string]bool, len(oldFile.Schemes))
	var regressions []string
	for _, o := range oldFile.Schemes {
		seen[o.Scheme] = true
		n, ok := newBy[o.Scheme]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from %s", o.Scheme, newPath))
			continue
		}
		delta := 0.0
		if o.RefsPerSec > 0 {
			delta = n.RefsPerSec/o.RefsPerSec - 1
		}
		verdict := "ok"
		if delta < -tolerance {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f refs/s (%+.1f%%, tolerance -%.0f%%)",
					o.Scheme, o.RefsPerSec, n.RefsPerSec, 100*delta, 100*tolerance))
		}
		fmt.Printf("%-8s %12.0f -> %12.0f refs/s  %+6.1f%%  %s\n",
			o.Scheme, o.RefsPerSec, n.RefsPerSec, 100*delta, verdict)
	}
	for _, n := range newFile.Schemes {
		if !seen[n.Scheme] {
			fmt.Printf("%-8s %12s -> %12.0f refs/s  (new scheme, not compared)\n", n.Scheme, "-", n.RefsPerSec)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d scheme(s) regressed:\n  %s", len(regressions), joinLines(regressions))
	}
	return nil
}

func readBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Schemes) == 0 {
		return nil, fmt.Errorf("%s: no scheme entries", path)
	}
	return &f, nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
