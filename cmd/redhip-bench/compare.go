package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// compareBaselines diffs two BENCH_baseline.json files scheme by scheme
// and fails when any scheme's refs/sec dropped by more than tolerance
// (a fraction: 0.10 = 10%). Schemes present in old but missing from new
// fail too — a silently dropped measurement is how a regression hides;
// schemes new adds are reported but not judged (no reference point).
func compareBaselines(oldPath, newPath string, tolerance float64) error {
	oldFile, err := readBaseline(oldPath)
	if err != nil {
		return err
	}
	newFile, err := readBaseline(newPath)
	if err != nil {
		return err
	}
	if oldFile.Workload != newFile.Workload || oldFile.RefsPerCore != newFile.RefsPerCore || oldFile.Geometry != newFile.Geometry {
		return fmt.Errorf("baselines not comparable: %s/%s/%d refs vs %s/%s/%d refs",
			oldFile.Geometry, oldFile.Workload, oldFile.RefsPerCore,
			newFile.Geometry, newFile.Workload, newFile.RefsPerCore)
	}

	newBy := make(map[string]baselineEntry, len(newFile.Schemes))
	for _, e := range newFile.Schemes {
		newBy[e.Scheme] = e
	}
	seen := make(map[string]bool, len(oldFile.Schemes))
	var regressions []string
	for _, o := range oldFile.Schemes {
		seen[o.Scheme] = true
		n, ok := newBy[o.Scheme]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from %s", o.Scheme, newPath))
			continue
		}
		delta := 0.0
		if o.RefsPerSec > 0 {
			delta = n.RefsPerSec/o.RefsPerSec - 1
		}
		verdict := "ok"
		if delta < -tolerance {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f refs/s (%+.1f%%, tolerance -%.0f%%)",
					o.Scheme, o.RefsPerSec, n.RefsPerSec, 100*delta, 100*tolerance))
		}
		fmt.Printf("%-8s %12.0f -> %12.0f refs/s  %+6.1f%%  %s\n",
			o.Scheme, o.RefsPerSec, n.RefsPerSec, 100*delta, verdict)
	}
	for _, n := range newFile.Schemes {
		if !seen[n.Scheme] {
			fmt.Printf("%-8s %12s -> %12.0f refs/s  (new scheme, not compared)\n", n.Scheme, "-", n.RefsPerSec)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d scheme(s) regressed:\n  %s", len(regressions), joinLines(regressions))
	}
	return nil
}

func readBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Schemes) == 0 {
		return nil, fmt.Errorf("%s: no scheme entries", path)
	}
	return &f, nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
