// Command redhip-lint runs the project's custom static-analysis suite:
//
//	go run ./cmd/redhip-lint ./...
//
// Eight analyzers machine-enforce the simulator's contracts —
// determinism (no wall clock, no global rand, no order-dependent map
// folds in simulation packages), hotpath (no allocations, interface
// dispatch or defer in //redhip:hotpath functions), exhaustive (switches
// over scheme/inclusion/policy enums cover every variant), invariant
// (exported mutators on cache.Cache/core.Table run redhipassert checks,
// panic messages are package-prefixed), statecov (every field of a
// snapshot-reachable struct is serialised or //redhip:transient),
// guarded (//redhip:guardedby mutex discipline, atomic-field
// discipline, goroutine capture audit), unsafeaudit (unsafe/reflect/
// mmap confined to analysis.UnsafePackages, each site justified by
// //redhip:unsafe-ok) and annotations (malformed //redhip: directives
// are findings, not silently ignored typos).
//
// The analyzer list lives in internal/analysis/registry, sorted by
// name, so -list output and the run order are deterministic.
//
// Diagnostics print as path:line:col: [analyzer] message and any
// finding makes the process exit 1, so CI can run it as a blocking job.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"redhip/internal/analysis"
	"redhip/internal/analysis/load"
	"redhip/internal/analysis/registry"
	"redhip/internal/version"
)

var analyzers = registry.All()

func main() {
	listFlag := flag.Bool("list", false, "list the registered analyzers and exit")
	typeErrFlag := flag.Bool("type-errors", false, "also report type-checking errors (default: fatal only when a package fails to load)")
	verFlag := flag.Bool("version", false, "print build version and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: redhip-lint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Packages default to ./... resolved against the module root.\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *verFlag {
		fmt.Println(version.String())
		return
	}

	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := load.NewLoader(load.Config{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "redhip-lint: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.Patterns(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "redhip-lint: %v\n", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "redhip-lint: no packages matched")
		os.Exit(2)
	}

	var diags []analysis.Diagnostic
	hadTypeErrors := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			hadTypeErrors = true
			if *typeErrFlag {
				fmt.Fprintf(os.Stderr, "redhip-lint: %s: type error: %v\n", pkg.Path, terr)
			}
		}
		for _, a := range analyzers {
			pass := analysis.NewPass(a, loader.Fset(), pkg.Files, pkg.Types, pkg.Info,
				func(d analysis.Diagnostic) { diags = append(diags, d) })
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "redhip-lint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
	}

	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := loader.Fset().Position(diags[i].Pos), loader.Fset().Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	wd, _ := os.Getwd()
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		name := pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, name); err == nil && len(rel) < len(name) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "redhip-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	if hadTypeErrors && *typeErrFlag {
		os.Exit(1)
	}
}
