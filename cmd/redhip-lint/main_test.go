package main

import (
	"testing"

	"redhip/internal/analysis"
	"redhip/internal/analysis/load"
)

// TestTreeIsLintClean pins the acceptance criterion that the real tree
// has zero findings across every registered analyzer: all pre-existing
// findings are fixed or carry their documented annotation. A regression
// here is exactly what the blocking CI lint job would report.
func TestTreeIsLintClean(t *testing.T) {
	loader, err := load.NewLoader(load.Config{})
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkgs, err := loader.Patterns("./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := analysis.NewPass(a, loader.Fset(), pkg.Files, pkg.Types, pkg.Info,
				func(d analysis.Diagnostic) { diags = append(diags, d) })
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := loader.Fset().Position(d.Pos)
				t.Errorf("%s: [%s] %s", pos, a.Name, d.Message)
			}
		}
	}
}
