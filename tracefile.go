package redhip

import (
	"io"

	"redhip/internal/trace"
	"redhip/internal/workload"
)

// WriteTrace encodes a trace to w in the compact delta-varint binary
// format ("RDHT"). Sequential and strided streams cost a few bytes per
// record.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// ReadTrace decodes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// TraceStats summarises a record stream (footprint, write fraction,
// address range).
type TraceStats = trace.Stats

// ComputeTraceStats scans records and returns summary statistics.
func ComputeTraceStats(recs []TraceRecord) TraceStats { return trace.ComputeStats(recs) }

// WriteWorkloadProfile encodes a workload profile as JSON (the format
// redhip-trace -profile consumes).
func WriteWorkloadProfile(w io.Writer, p *WorkloadProfile) error {
	return workload.WriteProfile(w, p)
}

// ReadWorkloadProfile decodes and validates a JSON workload profile.
func ReadWorkloadProfile(r io.Reader) (*WorkloadProfile, error) {
	return workload.ReadProfile(r)
}
