// Package redhip is a library reproduction of "ReDHiP: Recalibrating
// Deep Hierarchy Prediction for Energy Efficiency" (Li, Franklin,
// Bianchini, Chong — IPDPS 2014).
//
// ReDHiP predicts last-level-cache misses with a tiny, direct-mapped,
// 1-bit prediction table indexed by the low bits of the block address
// (the "bits-hash"), recalibrated periodically from the LLC tag array.
// An L1 miss whose block is predicted absent from the (inclusive) LLC
// skips every lower cache level and goes straight to memory, saving
// both the serial lookup latency and — dominantly — the large dynamic
// energy of L3/L4 tag+data probes.
//
// The package exposes three layers:
//
//   - The prediction structures themselves (NewPredictionTable,
//     NewCBF, ...) for embedding in other simulators.
//   - A trace-driven 8-core, 4-level cache hierarchy simulator
//     (Run, PaperConfig, ScaledConfig) with the five schemes the paper
//     evaluates (Base, Phased, CBF, ReDHiP, Oracle), three inclusion
//     policies, and a stride prefetcher.
//   - The experiment harness (NewExperiments) that regenerates every
//     table and figure of the paper's evaluation.
//
// A minimal session:
//
//	cfg := redhip.ScaledConfig()                  // Table I geometry / 16
//	res, err := redhip.RunWorkload(cfg, "mcf", 1) // 8 copies of mcf
//	base, err := redhip.RunWorkload(cfg.WithScheme(redhip.Base), "mcf", 1)
//	fmt.Printf("speedup %.1f%%\n", 100*res.Speedup(base))
package redhip

import (
	"redhip/internal/core"
	"redhip/internal/experiment"
	"redhip/internal/memaddr"
	"redhip/internal/predictor"
	"redhip/internal/prefetch"
	"redhip/internal/sim"
	"redhip/internal/stats"
	"redhip/internal/trace"
	"redhip/internal/workload"
)

// Addr is a 64-bit physical byte address; Addr.Block() strips the
// 6-bit block offset.
type Addr = memaddr.Addr

// BlockSize is the cache block size (64 bytes) used throughout.
const BlockSize = memaddr.BlockSize

// --- simulator -----------------------------------------------------------------

// Config describes one simulation: cache geometry, energy constants,
// scheme, inclusion policy, prediction-table and prefetcher settings.
type Config = sim.Config

// Result carries everything a run produces: cycles, per-level cache
// statistics, the energy breakdown, predictor accuracy and prefetcher
// counters, plus the derived paper metrics (Speedup,
// DynamicEnergyRatio, TotalEnergySaving, PerformanceEnergyMetric).
type Result = sim.Result

// Scheme selects the evaluated mechanism.
type Scheme = sim.Scheme

// The five schemes of the paper's evaluation (Figures 6-8).
const (
	// Base: no prediction, parallel tag+data access at every level.
	Base = sim.Base
	// Phased: serialised tag-then-data access at L3/L4.
	Phased = sim.Phased
	// CBF: counting-Bloom-filter prediction at equal area.
	CBF = sim.CBF
	// ReDHiP: the paper's recalibrated 1-bit prediction table.
	ReDHiP = sim.ReDHiP
	// Oracle: perfect, free LLC-presence prediction (upper bound).
	Oracle = sim.Oracle
)

// InclusionPolicy selects how the hierarchy's levels relate.
type InclusionPolicy = sim.InclusionPolicy

// The three policies of Figure 13.
const (
	Inclusive = sim.Inclusive
	Hybrid    = sim.Hybrid
	Exclusive = sim.Exclusive
)

// Schemes lists all five schemes in presentation order.
func Schemes() []Scheme { return sim.Schemes() }

// PaperConfig returns the exact Table I configuration: 8 cores at
// 3.7 GHz, 32K/256K/4M private caches, 64M shared LLC, 512K prediction
// table, recalibration every 1M L1 misses.
func PaperConfig() Config { return sim.Paper() }

// ScaledConfig returns the laptop-scale configuration: every capacity
// divided by 16 with associativities, overhead ratios and p-k preserved.
// Use workload scale 16 with it (RunWorkload does so automatically).
func ScaledConfig() Config { return sim.Scaled() }

// SmokeConfig returns a tiny configuration for tests and demos.
func SmokeConfig() Config { return sim.Smoke() }

// Run simulates cfg over explicit per-core sources (one per core).
func Run(cfg Config, sources []WorkloadSource) (*Result, error) {
	return sim.Run(cfg, sources)
}

// RunWorkload simulates cfg over a named workload from the paper's
// suite, instantiating one source per core at cfg.WorkloadScale.
func RunWorkload(cfg Config, name string, seed uint64) (*Result, error) {
	srcs, err := workload.Sources(name, cfg.Cores, cfg.WorkloadScale, seed)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg, srcs)
}

// --- workloads ------------------------------------------------------------------

// WorkloadSource produces an endless memory-reference stream for one
// core.
type WorkloadSource = workload.Source

// WorkloadProfile describes a synthetic workload as a weighted mixture
// of access-pattern components.
type WorkloadProfile = workload.Profile

// ComponentSpec is one component of a WorkloadProfile.
type ComponentSpec = workload.ComponentSpec

// Access-pattern component kinds for custom workloads.
const (
	KindHot     = workload.KindHot
	KindStream  = workload.KindStream
	KindStrided = workload.KindStrided
	KindChase   = workload.KindChase
	KindZipf    = workload.KindZipf
)

// Workloads lists the paper's eleven workload names in presentation
// order (eight SPEC 2006 benchmarks, mix, pmf, blas).
func Workloads() []string { return workload.BenchmarkNames() }

// WorkloadSources instantiates the per-core sources for a named
// workload at the given scale divisor.
func WorkloadSources(name string, cores int, scale, seed uint64) ([]WorkloadSource, error) {
	return workload.Sources(name, cores, scale, seed)
}

// NewWorkload builds a source from a custom profile. scale divides all
// region sizes and must be a power of two.
func NewWorkload(p *WorkloadProfile, scale, seed uint64) (WorkloadSource, error) {
	return workload.New(p, scale, seed)
}

// CaptureTrace materialises n references from a source (for writing
// trace files or inspection).
func CaptureTrace(src WorkloadSource, n int) *Trace { return workload.Capture(src, n) }

// ReplayTrace wraps an in-memory trace as a WorkloadSource.
func ReplayTrace(tr *Trace) WorkloadSource { return workload.FromTrace(tr) }

// Trace is an in-memory memory-reference trace; trace files use the
// compact binary encoding of WriteTrace/ReadTrace.
type Trace = trace.Trace

// TraceRecord is one memory reference.
type TraceRecord = trace.Record

// WriteTrace and ReadTrace are re-exported in tracefile.go.

// --- prediction structures ---------------------------------------------------------

// PredictionTable is the paper's contribution: the direct-mapped 1-bit
// recalibrated LLC-presence table (Section III).
type PredictionTable = core.Table

// RecalCost is the stall-cycle and energy cost of one recalibration.
type RecalCost = core.RecalCost

// NewPredictionTable builds a table of sizeBytes (power of two) with
// the given recalibration banking factor.
func NewPredictionTable(sizeBytes uint64, banks int) (*PredictionTable, error) {
	return core.NewTable(sizeBytes, banks)
}

// NewPredictionTableForCache builds a table at the paper's 0.78%
// storage-overhead ratio of the covered cache.
func NewPredictionTableForCache(cacheSizeBytes uint64, banks int) (*PredictionTable, error) {
	return core.NewForCache(cacheSizeBytes, banks)
}

// Predictor is the LLC-presence predictor interface; implementations
// must never produce false negatives.
type Predictor = predictor.Predictor

// CountingBloomFilter is the equal-area baseline predictor.
type CountingBloomFilter = predictor.CBF

// NewCBF builds a counting Bloom filter within sizeBytes using
// counterBits-wide saturating counters and the given lookup cost.
func NewCBF(sizeBytes uint64, counterBits uint, delay uint32, nj float64) (*CountingBloomFilter, error) {
	return predictor.NewCBF(sizeBytes, counterBits, delay, nj)
}

// PrefetchConfig parameterises the stride prefetcher of Section V-C.
type PrefetchConfig = prefetch.Config

// DefaultPrefetchConfig returns the evaluation's prefetcher settings.
func DefaultPrefetchConfig() PrefetchConfig { return prefetch.DefaultConfig() }

// --- experiments ------------------------------------------------------------------

// Experiments runs and memoises the paper's evaluation.
type Experiments = experiment.Runner

// ExperimentOptions configure an Experiments runner.
type ExperimentOptions = experiment.Options

// PaperFigure is one regenerated table or figure.
type PaperFigure = experiment.Figure

// ResultTable is a rendered result table (text/CSV/markdown).
type ResultTable = stats.Table

// NewExperiments builds an experiment runner; zero options mean the
// scaled geometry over all eleven workloads. It fails on invalid
// options (e.g. a negative Parallelism).
func NewExperiments(opts ExperimentOptions) (*Experiments, error) {
	return experiment.NewRunner(opts)
}
