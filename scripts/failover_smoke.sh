#!/usr/bin/env bash
# failover_smoke.sh — scripted failover drill of the sharded serve
# cluster, CI-wired.
#
# Two stages:
#   1. The tagged test pass: `go test -tags failover -race` boots three
#      in-process replicas behind the router, SIGKILLs one and
#      partitions another mid-sweep, and asserts no lost jobs, no
#      double execution and bit-identical results (see
#      internal/cluster/cluster_test.go).
#   2. A live drill over real processes: a router and three registered
#      redhip-serve replicas; one replica is SIGKILLed and another
#      SIGSTOPped (a partition: alive but silent) mid-batch. Every
#      routed job must still finish, execution counters summed over the
#      survivors must equal the number of unique specs, results must be
#      byte-identical to a fresh single-replica run, a mixed-version
#      registration must be refused, and a seeded loadgen mix through
#      the router must see zero 5xx while spreading across replicas.
set -euo pipefail

ROUTER_ADDR="${FAILOVER_SMOKE_ROUTER:-127.0.0.1:8095}"
R1_ADDR="${FAILOVER_SMOKE_R1:-127.0.0.1:8096}"
R2_ADDR="${FAILOVER_SMOKE_R2:-127.0.0.1:8097}"
R3_ADDR="${FAILOVER_SMOKE_R3:-127.0.0.1:8098}"
REF_ADDR="${FAILOVER_SMOKE_REF:-127.0.0.1:8099}"
ROUTER="http://$ROUTER_ADDR"
BIN_DIR="$(mktemp -d)"

# Replicas run with an auto-derived lease: 3/4 of the router's
# advertised dead-declaration floor (3 x 0.75 x 150ms ~ 337ms, so the
# lease lands ~253ms) — below the floor, as the no-double-execution
# invariant requires. Drill jobs still run for several times the lease,
# so a killed or frozen replica always fences before finishing anything.
DRILL_REFS=2000000

declare -A REPLICA_PID

cleanup() {
    for PID in "${ROUTER_PID:-}" "${REF_PID:-}" "${REPLICA_PID[@]:-}"; do
        if [[ -n "$PID" ]]; then
            kill -CONT "$PID" 2>/dev/null || true
            kill "$PID" 2>/dev/null || true
            wait "$PID" 2>/dev/null || true
        fi
    done
    rm -rf "$BIN_DIR"
}
trap cleanup EXIT

fail() {
    echo "failover-smoke: FAIL: $*" >&2
    for LOG in "$BIN_DIR"/*.log; do
        [[ -f "$LOG" ]] && sed "s|^|failover-smoke:   $(basename "$LOG"): |" "$LOG" >&2
    done
    exit 1
}

wait_healthy() { # args: base url
    for _ in $(seq 1 50); do
        curl -fsS "$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    fail "$1 never became healthy"
}

ring_size() {
    curl -fsS "$ROUTER/v1/cluster/status" | sed -n 's/.*"ring_size": *\([0-9]*\).*/\1/p'
}

wait_ring() { # args: wanted size
    for _ in $(seq 1 100); do
        [[ "$(ring_size)" == "$1" ]] && return 0
        sleep 0.2
    done
    fail "ring never reached size $1 (now: $(ring_size))"
}

submit() { # args: json body; sets SUBMIT_CODE, SUBMIT_BODY, JOB_ID, JOB_REPLICA
    local out hdrs
    hdrs="$BIN_DIR/hdrs"
    out=$(curl -sS -D "$hdrs" -w '\n%{http_code}' -X POST "$ROUTER/v1/jobs" \
        -H 'Content-Type: application/json' -d "$1") || fail "POST /v1/jobs failed"
    SUBMIT_CODE=$(echo "$out" | tail -n1)
    SUBMIT_BODY=$(echo "$out" | sed '$d')
    JOB_ID=$(echo "$SUBMIT_BODY" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    JOB_REPLICA=$(sed -n 's/^X-Redhip-Replica: *\([^[:space:]]*\).*/\1/Ip' "$hdrs")
}

wait_done() { # args: router job id
    local state=""
    for _ in $(seq 1 300); do
        state=$(curl -fsS "$ROUTER/v1/jobs/$1?results=false" \
            | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        [[ "$state" == done ]] && return 0
        case "$state" in failed | cancelled) fail "job $1 ended $state — a job was lost" ;; esac
        sleep 0.2
    done
    fail "job $1 never finished (last: $state)"
}

job_rehomes() { # args: router job id
    curl -fsS "$ROUTER/v1/jobs/$1?results=false" | sed -n 's/.*"rehomes": *\([0-9]*\).*/\1/p'
}

spec_json() { # args: spec index
    echo "{\"workloads\":[\"mcf\"],\"schemes\":[\"base\",\"redhip\"],\"geometry\":\"smoke\",\"refs_per_core\":$((DRILL_REFS + $1))}"
}

echo "failover-smoke: tagged -race drill (3 in-process replicas, kill + partition)"
go test -tags failover -race ./internal/cluster/ || fail "tagged failover test pass failed"

echo "failover-smoke: building redhip-router, redhip-serve, redhip-load"
go build -o "$BIN_DIR/redhip-router" ./cmd/redhip-router
go build -o "$BIN_DIR/redhip-serve" ./cmd/redhip-serve
go build -o "$BIN_DIR/redhip-load" ./cmd/redhip-load

echo "failover-smoke: starting router + three replicas"
"$BIN_DIR/redhip-router" -addr "$ROUTER_ADDR" -probe-interval 150ms -fail-threshold 3 \
    >"$BIN_DIR/router.log" 2>&1 &
ROUTER_PID=$!
wait_healthy "$ROUTER"

for NAME_ADDR in "r1:$R1_ADDR" "r2:$R2_ADDR" "r3:$R3_ADDR"; do
    NAME="${NAME_ADDR%%:*}"
    ADDR="${NAME_ADDR#*:}"
    "$BIN_DIR/redhip-serve" -addr "$ADDR" -workers 2 -queue 64 \
        -router "$ROUTER" -advertise "http://$ADDR" -name "$NAME" \
        >"$BIN_DIR/$NAME.log" 2>&1 &
    REPLICA_PID[$NAME]=$!
done
wait_ring 3

echo "failover-smoke: mixed-version registration must be refused"
SKEW=$(curl -sS -w '\n%{http_code}' -X POST "$ROUTER/v1/cluster/register" \
    -H 'Content-Type: application/json' \
    -d '{"name":"ghost","base_url":"http://127.0.0.1:1","version":"v0.0.0-skew-test"}')
SKEW_CODE=$(echo "$SKEW" | tail -n1)
[[ "$SKEW_CODE" == 409 ]] || fail "skewed registration = $SKEW_CODE, want 409"
echo "$SKEW" | grep -q 'version skew' || fail "skew rejection lacks explanation: $SKEW"

# --- drill 1: SIGKILL a replica mid-batch ------------------------------------

echo "failover-smoke: drill 1 — SIGKILL mid-batch"
WAVE1_IDS=()
WAVE1_SPECS=()
SEEN_REPLICAS=""
VICTIM=""
for N in $(seq 0 7); do
    submit "$(spec_json "$N")"
    [[ "$SUBMIT_CODE" == 202 ]] || fail "wave-1 submit $N = $SUBMIT_CODE: $SUBMIT_BODY"
    [[ -n "$JOB_ID" && -n "$JOB_REPLICA" ]] || fail "wave-1 submit $N missing id/replica"
    WAVE1_IDS+=("$JOB_ID")
    WAVE1_SPECS+=("$N")
    case " $SEEN_REPLICAS " in *" $JOB_REPLICA "*) ;; *) SEEN_REPLICAS="$SEEN_REPLICAS $JOB_REPLICA" ;; esac
    [[ -z "$VICTIM" ]] && { VICTIM="$JOB_REPLICA" VICTIM_JOB="$JOB_ID"; }
done
[[ "$(echo "$SEEN_REPLICAS" | wc -w)" -ge 2 ]] \
    || fail "8 distinct specs all routed to one replica ($SEEN_REPLICAS) — the ring is not spreading keys"
sleep 0.2
echo "failover-smoke: SIGKILL $VICTIM (pid ${REPLICA_PID[$VICTIM]})"
kill -9 "${REPLICA_PID[$VICTIM]}"
wait "${REPLICA_PID[$VICTIM]}" 2>/dev/null || true
unset "REPLICA_PID[$VICTIM]"

for ID in "${WAVE1_IDS[@]}"; do
    wait_done "$ID"
done
REHOMES=$(job_rehomes "$VICTIM_JOB")
[[ -n "$REHOMES" && "$REHOMES" -ge 1 ]] \
    || fail "job $VICTIM_JOB lost its replica but reports rehomes=$REHOMES"
echo "failover-smoke: drill 1 OK (all 8 jobs done, $VICTIM's jobs re-homed)"

# --- drill 2: SIGSTOP (partition) a replica mid-batch ------------------------

echo "failover-smoke: drill 2 — SIGSTOP partition mid-batch"
WAVE2_IDS=()
WAVE2_SPECS=()
FROZEN=""
for N in $(seq 8 10); do
    submit "$(spec_json "$N")"
    [[ "$SUBMIT_CODE" == 202 ]] || fail "wave-2 submit $N = $SUBMIT_CODE: $SUBMIT_BODY"
    WAVE2_IDS+=("$JOB_ID")
    WAVE2_SPECS+=("$N")
    [[ -z "$FROZEN" ]] && { FROZEN="$JOB_REPLICA" FROZEN_JOB="$JOB_ID"; }
done
sleep 0.2
echo "failover-smoke: SIGSTOP $FROZEN (pid ${REPLICA_PID[$FROZEN]})"
kill -STOP "${REPLICA_PID[$FROZEN]}"

for ID in "${WAVE2_IDS[@]}"; do
    wait_done "$ID"
done
REHOMES=$(job_rehomes "$FROZEN_JOB")
[[ -n "$REHOMES" && "$REHOMES" -ge 1 ]] \
    || fail "job $FROZEN_JOB's replica froze but reports rehomes=$REHOMES"

echo "failover-smoke: SIGCONT $FROZEN — it must fence, then rejoin the ring"
kill -CONT "${REPLICA_PID[$FROZEN]}"
wait_ring 2
for _ in $(seq 1 100); do
    READY=$(curl -fsS "$ROUTER/v1/cluster/status" | grep -c '"state": "ready"') || READY=0
    [[ "$READY" == 2 ]] && break
    sleep 0.2
done
[[ "$READY" == 2 ]] || fail "frozen replica never rejoined the ring (ready=$READY)"
echo "failover-smoke: drill 2 OK (all 3 jobs done, $FROZEN fenced and rejoined)"

# --- invariant: no double execution ------------------------------------------

# Every unique spec executed exactly once across the cluster: the
# killed replica finished nothing (killed ~0.2s into >1s jobs) and the
# frozen one fenced on resume, so the survivors' executions_done
# counters must sum to the 11 unique specs.
TOTAL_EXEC=0
for NAME in "${!REPLICA_PID[@]}"; do
    ADDR_VAR="$(echo "$NAME" | tr '[:lower:]' '[:upper:]')_ADDR"
    EXEC=$(curl -fsS "http://${!ADDR_VAR}/metrics" \
        | sed -n 's/^redhip_serve_executions_done_total \([0-9]*\)$/\1/p')
    FENCES=$(curl -fsS "http://${!ADDR_VAR}/metrics" \
        | sed -n 's/^redhip_serve_lease_fences_total \([0-9]*\)$/\1/p')
    echo "failover-smoke:   $NAME executed $EXEC (lease fences: $FENCES)"
    TOTAL_EXEC=$((TOTAL_EXEC + EXEC))
done
UNIQUE=$(( ${#WAVE1_IDS[@]} + ${#WAVE2_IDS[@]} ))
[[ "$TOTAL_EXEC" == "$UNIQUE" ]] \
    || fail "executions summed over survivors = $TOTAL_EXEC, want $UNIQUE unique specs — a spec ran twice or got lost"
echo "failover-smoke: execution accounting OK ($TOTAL_EXEC == $UNIQUE unique specs)"

# --- invariant: bit-identical results ----------------------------------------

echo "failover-smoke: diffing all results against a fault-free single replica"
"$BIN_DIR/redhip-serve" -addr "$REF_ADDR" -workers 4 -queue 64 \
    >"$BIN_DIR/ref.log" 2>&1 &
REF_PID=$!
wait_healthy "http://$REF_ADDR"
ALL_IDS=("${WAVE1_IDS[@]}" "${WAVE2_IDS[@]}")
ALL_SPECS=("${WAVE1_SPECS[@]}" "${WAVE2_SPECS[@]}")
for I in "${!ALL_IDS[@]}"; do
    REF_OUT=$(curl -sS -X POST "http://$REF_ADDR/v1/jobs" -H 'Content-Type: application/json' \
        -d "$(spec_json "${ALL_SPECS[$I]}")")
    REF_ID=$(echo "$REF_OUT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    [[ -n "$REF_ID" ]] || fail "reference submit failed: $REF_OUT"
    for _ in $(seq 1 300); do
        CODE=$(curl -sS -o "$BIN_DIR/ref_results" -w '%{http_code}' \
            "http://$REF_ADDR/v1/jobs/$REF_ID/results")
        [[ "$CODE" == 200 ]] && break
        sleep 0.2
    done
    [[ "$CODE" == 200 ]] || fail "reference job ${ALL_SPECS[$I]} never finished"
    curl -fsS "$ROUTER/v1/jobs/${ALL_IDS[$I]}/results" >"$BIN_DIR/routed_results" \
        || fail "router results fetch failed for ${ALL_IDS[$I]}"
    cmp -s "$BIN_DIR/routed_results" "$BIN_DIR/ref_results" \
        || fail "spec ${ALL_SPECS[$I]}: routed results differ from the single-replica reference"
done
echo "failover-smoke: results bit-identical across all $UNIQUE specs"

# --- loadgen mix through the router ------------------------------------------

echo "failover-smoke: seeded loadgen mix through the router"
cat >"$BIN_DIR/profile.json" <<'EOF'
{
  "name": "failover-mix",
  "seed": 7,
  "phases": [
    {"name": "steady", "duration_seconds": 2, "rate_per_sec": 10},
    {"name": "burst", "duration_seconds": 1, "rate_per_sec": 15, "model": "bursty"}
  ],
  "cohorts": [
    {"name": "a", "weight": 1,
     "spec": {"workloads":["mcf"],"schemes":["base"],"geometry":"smoke","refs_per_core":2000}},
    {"name": "b", "weight": 1,
     "spec": {"workloads":["mcf"],"schemes":["redhip"],"geometry":"smoke","refs_per_core":2100}},
    {"name": "c", "weight": 1,
     "spec": {"workloads":["mcf"],"schemes":["base","redhip"],"geometry":"smoke","refs_per_core":2200}}
  ]
}
EOF
"$BIN_DIR/redhip-load" -url "$ROUTER" -profile "$BIN_DIR/profile.json" \
    -report "$BIN_DIR/load_report.json" >/dev/null 2>"$BIN_DIR/load.log" \
    || fail "redhip-load run failed"
FIVEXX=$(sed -n 's/.*"server_5xx": *\([0-9]*\).*/\1/p' "$BIN_DIR/load_report.json" | tail -n1)
NETERR=$(sed -n 's/.*"network_errors": *\([0-9]*\).*/\1/p' "$BIN_DIR/load_report.json" | tail -n1)
ACCEPTED=$(sed -n 's/.*"accepted": *\([0-9]*\).*/\1/p' "$BIN_DIR/load_report.json" | tail -n1)
[[ "$FIVEXX" == 0 ]] || fail "loadgen saw $FIVEXX 5xx through the router"
[[ "$NETERR" == 0 ]] || fail "loadgen saw $NETERR network errors through the router"
[[ -n "$ACCEPTED" && "$ACCEPTED" -ge 1 ]] || fail "loadgen had no accepted submissions"
grep -q '"replicas"' "$BIN_DIR/load_report.json" \
    || fail "loadgen report lacks per-replica accounting (X-RedHiP-Replica missing?)"
echo "failover-smoke: loadgen OK ($ACCEPTED accepted, zero 5xx, zero network errors)"

echo "failover-smoke: OK"
