#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of redhip-serve, CI-wired.
#
# Builds redhip-sim and redhip-serve, starts the server, submits a tiny
# smoke-geometry job, polls it to completion, scrapes /metrics, and
# fails on any non-2xx response or missing metric family.
set -euo pipefail

ADDR="${SERVE_SMOKE_ADDR:-127.0.0.1:8091}"
BASE="http://$ADDR"
BIN_DIR="$(mktemp -d)"
LOG="$BIN_DIR/serve.log"

cleanup() {
    if [[ -n "${SERVER_PID:-}" ]]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN_DIR"
}
trap cleanup EXIT

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    [[ -f "$LOG" ]] && sed 's/^/serve-smoke:   server: /' "$LOG" >&2
    exit 1
}

echo "serve-smoke: building redhip-sim and redhip-serve"
go build -o "$BIN_DIR/redhip-sim" ./cmd/redhip-sim
go build -o "$BIN_DIR/redhip-serve" ./cmd/redhip-serve

echo "serve-smoke: starting server on $ADDR"
# A 1-byte RAM trace budget forces every stream through the disk tier,
# and the snapshot cache makes the warmed job exercise the warm-state
# store — both must then show up on /metrics below.
"$BIN_DIR/redhip-serve" -addr "$ADDR" -workers 2 -queue 8 \
    -cache-bytes 1 -trace-dir "$BIN_DIR" \
    -snapshot-cache-bytes $((64 * 1024 * 1024)) >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for readiness.
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
    sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null || fail "server never became healthy"

echo "serve-smoke: submitting smoke job"
SUBMIT=$(curl -fsS -X POST "$BASE/v1/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"workloads":["mcf"],"schemes":["base","redhip"],"geometry":"smoke","refs_per_core":20000,"warmup_refs_per_core":5000}') \
    || fail "job submission rejected"
JOB_ID=$(echo "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[[ -n "$JOB_ID" ]] || fail "no job id in submit response: $SUBMIT"
echo "serve-smoke: job $JOB_ID accepted"

echo "serve-smoke: polling to completion"
STATE=""
for _ in $(seq 1 150); do
    STATUS=$(curl -fsS "$BASE/v1/jobs/$JOB_ID?results=false") || fail "status poll failed"
    STATE=$(echo "$STATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|cancelled) fail "job ended $STATE: $STATUS" ;;
    esac
    sleep 0.2
done
[[ "$STATE" == "done" ]] || fail "job did not complete in time (state: $STATE)"
echo "serve-smoke: job done"

# The full status must embed both results.
RESULTS=$(curl -fsS "$BASE/v1/jobs/$JOB_ID")
echo "$RESULTS" | grep -q '"results"' || fail "completed job has no results"

# The SSE replay must show progress before the terminal event.
EVENTS=$(curl -fsS --max-time 10 "$BASE/v1/jobs/$JOB_ID/events" || true)
echo "$EVENTS" | grep -q '^event: progress$' || fail "no progress event in SSE replay"
echo "$EVENTS" | grep -q '^event: done$' || fail "no terminal event in SSE replay"

echo "serve-smoke: scraping /metrics"
METRICS=$(curl -fsS "$BASE/metrics") || fail "/metrics scrape failed"
for M in \
    redhip_serve_jobs_submitted_total \
    redhip_serve_jobs_completed_total \
    redhip_serve_jobs_deduped_total \
    redhip_serve_jobs_rejected_total \
    redhip_serve_runner_executions_total \
    redhip_serve_queue_depth \
    redhip_serve_inflight \
    redhip_serve_run_duration_seconds \
    redhip_tracestore_hits_total \
    redhip_tracestore_misses_total \
    redhip_tracestore_evictions_total \
    redhip_tracestore_spills_total \
    redhip_tracestore_disk_hits_total \
    redhip_tracestore_disk_bytes \
    redhip_simstate_hits_total \
    redhip_simstate_puts_total \
    redhip_simstate_bytes; do
    echo "$METRICS" | grep -q "^# TYPE $M " || fail "metric family $M missing"
done
echo "$METRICS" | grep -q '^redhip_serve_jobs_completed_total 1$' \
    || fail "jobs_completed_total != 1"
# The tiny RAM budget must have pushed the job's stream to disk, and the
# warmed job must have parked its per-scheme warm states.
echo "$METRICS" | grep -Eq '^redhip_tracestore_spills_total [1-9]' \
    || fail "no trace block spilled to the disk tier"
echo "$METRICS" | grep -Eq '^redhip_simstate_puts_total [1-9]' \
    || fail "no warm-state blob stored in the snapshot cache"

# Sanity-check the sibling CLI still answers (the job built it above).
"$BIN_DIR/redhip-sim" -workload mcf -scheme base -geometry smoke -refs 5000 >/dev/null \
    || fail "redhip-sim smoke run failed"

echo "serve-smoke: OK"
