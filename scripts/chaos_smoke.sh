#!/usr/bin/env bash
# chaos_smoke.sh — fault-injection drill of the resilience stack, CI-wired.
#
# Two stages:
#   1. The tagged test pass: `go test -tags faultinject -race` over the
#      injector and every package carrying injection points, including
#      the 200-job chaos sweep in internal/serve.
#   2. A live drill: build redhip-serve with -tags faultinject, arm a
#      fault schedule via -fault, and verify over HTTP that (a) a job
#      with a retry policy survives injected run failures and the retry
#      shows in /metrics, and (b) a total-failure schedule trips the
#      circuit breaker into 503 + Retry-After and flips /readyz, while
#      /healthz stays 200 throughout.
#
# The faultinject tag never reaches default builds: untagged binaries
# compile the injection points out entirely (see internal/faultinject).
set -euo pipefail

ADDR="${CHAOS_SMOKE_ADDR:-127.0.0.1:8092}"
BASE="http://$ADDR"
BIN_DIR="$(mktemp -d)"
LOG="$BIN_DIR/serve.log"

cleanup() {
    if [[ -n "${SERVER_PID:-}" ]]; then
        kill "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$BIN_DIR"
}
trap cleanup EXIT

fail() {
    echo "chaos-smoke: FAIL: $*" >&2
    [[ -f "$LOG" ]] && sed 's/^/chaos-smoke:   server: /' "$LOG" >&2
    exit 1
}

start_server() { # args: extra server flags...
    "$BIN_DIR/redhip-serve" -addr "$ADDR" -workers 2 -queue 16 "$@" >"$LOG" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 50); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
        sleep 0.2
    done
    fail "server never became healthy"
}

stop_server() {
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

submit() { # args: json body; sets SUBMIT_CODE and SUBMIT_BODY
    local out
    out=$(curl -sS -w '\n%{http_code}' -X POST "$BASE/v1/jobs" \
        -H 'Content-Type: application/json' -d "$1") || fail "POST /v1/jobs failed"
    SUBMIT_CODE=$(echo "$out" | tail -n1)
    SUBMIT_BODY=$(echo "$out" | sed '$d')
}

wait_state() { # args: job id, wanted state
    local state=""
    for _ in $(seq 1 150); do
        state=$(curl -fsS "$BASE/v1/jobs/$1?results=false" \
            | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        [[ "$state" == "$2" ]] && return 0
        case "$state" in done | failed | cancelled) fail "job $1 ended $state, want $2" ;; esac
        sleep 0.2
    done
    fail "job $1 did not reach $2 (last: $state)"
}

echo "chaos-smoke: tagged -race test pass (injector + injection-point packages)"
go test -tags faultinject -race \
    ./internal/faultinject/ ./internal/tracestore/ ./internal/experiment/ ./internal/serve/ \
    || fail "tagged test pass failed"

echo "chaos-smoke: untagged builds must reject -fault"
go build -o "$BIN_DIR/redhip-serve-plain" ./cmd/redhip-serve
if "$BIN_DIR/redhip-serve-plain" -addr "$ADDR" -fault 'experiment.run:err=x' 2>/dev/null; then
    fail "untagged binary accepted -fault"
fi

echo "chaos-smoke: building redhip-serve with -tags faultinject"
go build -tags faultinject -o "$BIN_DIR/redhip-serve" ./cmd/redhip-serve

# --- drill 1: retry survives injected run failures ---------------------------

echo "chaos-smoke: drill 1 — retry under a 35% run-failure schedule"
start_server -fault 'experiment.run:prob=0.35,err=chaos drill' -fault-seed 11 \
    -breaker-threshold -1 -retry-max 8
submit '{"workloads":["mcf"],"schemes":["base","redhip"],"geometry":"smoke","refs_per_core":2000,"retry":{"max_attempts":8,"backoff_ms":1}}'
[[ "$SUBMIT_CODE" == 202 ]] || fail "drill-1 submit = $SUBMIT_CODE: $SUBMIT_BODY"
JOB_ID=$(echo "$SUBMIT_BODY" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[[ -n "$JOB_ID" ]] || fail "no job id: $SUBMIT_BODY"
wait_state "$JOB_ID" done
METRICS=$(curl -fsS "$BASE/metrics") || fail "/metrics scrape failed"
RETRIES=$(echo "$METRICS" | sed -n 's/^redhip_serve_retries_total \([0-9]*\)$/\1/p')
[[ -n "$RETRIES" && "$RETRIES" -ge 1 ]] \
    || fail "job survived but retries_total=$RETRIES — faults not injected?"
echo "chaos-smoke: drill 1 OK (job done after $RETRIES retries)"
stop_server

# --- drill 2: total failure trips the breaker --------------------------------

echo "chaos-smoke: drill 2 — breaker trip under a 100% failure schedule"
start_server -fault 'experiment.run:prob=1,err=chaos drill' -fault-seed 11 \
    -breaker-threshold 2 -retry-max -1
for SEED in 1 2; do
    submit "{\"workloads\":[\"mcf\"],\"schemes\":[\"base\"],\"geometry\":\"smoke\",\"refs_per_core\":2000,\"seed\":$SEED}"
    [[ "$SUBMIT_CODE" == 202 ]] || fail "drill-2 seed $SEED submit = $SUBMIT_CODE: $SUBMIT_BODY"
    JOB_ID=$(echo "$SUBMIT_BODY" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    wait_state "$JOB_ID" failed
done
# Two consecutive failures under "base": its circuit is open now.
HDRS=$(curl -sS -D - -o /dev/null -X POST "$BASE/v1/jobs" \
    -H 'Content-Type: application/json' \
    -d '{"workloads":["mcf"],"schemes":["base"],"geometry":"smoke","refs_per_core":2000,"seed":3}')
echo "$HDRS" | head -n1 | grep -q ' 503 ' || fail "open breaker did not 503: $HDRS"
echo "$HDRS" | grep -qi '^retry-after:' || fail "breaker 503 missing Retry-After"
READY_CODE=$(curl -sS -o /dev/null -w '%{http_code}' "$BASE/readyz")
[[ "$READY_CODE" == 503 ]] || fail "/readyz = $READY_CODE with an open circuit, want 503"
curl -fsS "$BASE/healthz" >/dev/null || fail "/healthz failed during breaker-open (liveness must hold)"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^redhip_serve_breaker_trips_total [1-9]' || fail "breaker_trips_total not incremented"
echo "$METRICS" | grep -q '^redhip_serve_shed_breaker_total [1-9]' || fail "shed_breaker_total not incremented"
echo "chaos-smoke: drill 2 OK (breaker open: 503 + Retry-After, readyz 503, healthz 200)"
stop_server

echo "chaos-smoke: OK"
