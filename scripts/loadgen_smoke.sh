#!/usr/bin/env bash
# loadgen_smoke.sh — end-to-end smoke test of redhip-load + the sweep
# orchestration API, CI-wired.
#
# Proves four things:
#   1. The arrival schedule is a pure function of (profile, seed): two
#      -print-schedule runs with the same seed are byte-identical, a
#      different seed differs.
#   2. A 10s seeded bursty profile against a deliberately tiny server
#      (1 worker, queue depth 1) produces zero 5xx and nonzero 429s —
#      backpressure, not failure, under burst.
#   3. A sweep submitted to that loadgen-warmed server (children dedup
#      onto the loadgen-created jobs) renders artifacts byte-identical
#      to the same sweep on a fresh, never-loaded server: artifacts
#      derive only from deterministic simulation outputs.
#   4. /healthz reports JSON with a version, and every CLI answers
#      -version.
set -euo pipefail

ADDR1="${LOADGEN_SMOKE_ADDR1:-127.0.0.1:8093}"
ADDR2="${LOADGEN_SMOKE_ADDR2:-127.0.0.1:8094}"
BASE1="http://$ADDR1"
BASE2="http://$ADDR2"
BIN_DIR="$(mktemp -d)"
LOG1="$BIN_DIR/serve1.log"
LOG2="$BIN_DIR/serve2.log"

cleanup() {
    for PID in "${SERVER1_PID:-}" "${SERVER2_PID:-}"; do
        if [[ -n "$PID" ]]; then
            kill "$PID" 2>/dev/null || true
            wait "$PID" 2>/dev/null || true
        fi
    done
    rm -rf "$BIN_DIR"
}
trap cleanup EXIT

fail() {
    echo "loadgen-smoke: FAIL: $*" >&2
    [[ -f "$LOG1" ]] && sed 's/^/loadgen-smoke:   server1: /' "$LOG1" >&2
    [[ -f "$LOG2" ]] && sed 's/^/loadgen-smoke:   server2: /' "$LOG2" >&2
    exit 1
}

wait_healthy() {
    local base=$1 pid=$2
    for _ in $(seq 1 50); do
        if curl -fsS "$base/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || fail "server at $base exited during startup"
        sleep 0.2
    done
    fail "server at $base never became healthy"
}

# json_int <file> <key>: extract an integer field from the report's
# "total" cohort, which the writer renders after the per-cohort blocks
# — hence the last occurrence wins.
json_int() {
    sed -n 's/.*"'"$2"'": *\([0-9][0-9]*\).*/\1/p' "$1" | tail -n 1
}

echo "loadgen-smoke: building redhip-serve and redhip-load"
go build -o "$BIN_DIR/redhip-serve" ./cmd/redhip-serve
go build -o "$BIN_DIR/redhip-load" ./cmd/redhip-load

echo "loadgen-smoke: -version answers"
"$BIN_DIR/redhip-load" -version >/dev/null || fail "redhip-load -version failed"
"$BIN_DIR/redhip-serve" -version >/dev/null || fail "redhip-serve -version failed"

echo "loadgen-smoke: schedule determinism"
"$BIN_DIR/redhip-load" -print-schedule -seed 42 -rate 20 -duration 10s -model bursty > "$BIN_DIR/sched-a.txt"
"$BIN_DIR/redhip-load" -print-schedule -seed 42 -rate 20 -duration 10s -model bursty > "$BIN_DIR/sched-b.txt"
diff "$BIN_DIR/sched-a.txt" "$BIN_DIR/sched-b.txt" \
    || fail "identically-seeded schedules differ"
[[ -s "$BIN_DIR/sched-a.txt" ]] || fail "schedule is empty"
"$BIN_DIR/redhip-load" -print-schedule -seed 43 -rate 20 -duration 10s -model bursty > "$BIN_DIR/sched-c.txt"
if diff -q "$BIN_DIR/sched-a.txt" "$BIN_DIR/sched-c.txt" >/dev/null; then
    fail "different seeds produced identical schedules"
fi

echo "loadgen-smoke: starting servers on $ADDR1 (tiny) and $ADDR2"
# Server 1 is deliberately starved — one worker, queue depth 1 — so the
# burst phase of the profile overflows the queue and earns honest 429s.
# Shedding is disabled so queue-full is the only rejection path: the
# report must show 429s, not 503s.
"$BIN_DIR/redhip-serve" -addr "$ADDR1" -workers 1 -queue 1 -memory-budget -1 >"$LOG1" 2>&1 &
SERVER1_PID=$!
"$BIN_DIR/redhip-serve" -addr "$ADDR2" -workers 2 -queue 8 >"$LOG2" 2>&1 &
SERVER2_PID=$!
wait_healthy "$BASE1" "$SERVER1_PID"
wait_healthy "$BASE2" "$SERVER2_PID"

echo "loadgen-smoke: /healthz payload"
HEALTH=$(curl -fsS "$BASE1/healthz")
echo "$HEALTH" | grep -q '"status": *"ok"' || fail "healthz missing status: $HEALTH"
echo "$HEALTH" | grep -q '"version"' || fail "healthz missing version: $HEALTH"

# The profile: 10 seconds of bursty traffic over six cohorts whose
# specs differ by workload and seed, each ~2s of simulation. Distinct
# specs mean dedup cannot absorb everything — new jobs must queue, and
# with one worker and queue depth 1 the burst has to bounce some.
cat > "$BIN_DIR/profile.json" <<'EOF'
{
  "name": "smoke-burst",
  "seed": 42,
  "phases": [
    {"name": "burst", "duration_seconds": 10, "rate_per_sec": 25,
     "model": "bursty", "burst_factor": 8, "burst_fraction": 0.3, "burst_mean_seconds": 1.0}
  ],
  "cohorts": [
    {"name": "s1", "weight": 1, "spec": {"workloads":["mcf"],"schemes":["base","redhip"],"geometry":"smoke","refs_per_core":4000000,"seed":1}},
    {"name": "s2", "weight": 1, "spec": {"workloads":["mcf"],"schemes":["base","redhip"],"geometry":"smoke","refs_per_core":4000000,"seed":2}},
    {"name": "s3", "weight": 1, "spec": {"workloads":["milc"],"schemes":["base","redhip"],"geometry":"smoke","refs_per_core":4000000,"seed":1}},
    {"name": "s4", "weight": 1, "spec": {"workloads":["milc"],"schemes":["base","redhip"],"geometry":"smoke","refs_per_core":4000000,"seed":2}},
    {"name": "s5", "weight": 1, "spec": {"workloads":["soplex"],"schemes":["base","redhip"],"geometry":"smoke","refs_per_core":4000000,"seed":1}},
    {"name": "s6", "weight": 1, "spec": {"workloads":["soplex"],"schemes":["base","redhip"],"geometry":"smoke","refs_per_core":4000000,"seed":2}}
  ]
}
EOF

echo "loadgen-smoke: 10s seeded bursty load against server 1"
"$BIN_DIR/redhip-load" -url "$BASE1" -profile "$BIN_DIR/profile.json" \
    -report "$BIN_DIR/report.json" || fail "redhip-load run failed"

SENT=$(json_int "$BIN_DIR/report.json" sent)
R429=$(json_int "$BIN_DIR/report.json" rejected_429)
R5XX=$(json_int "$BIN_DIR/report.json" server_5xx)
NETERR=$(json_int "$BIN_DIR/report.json" network_errors)
echo "loadgen-smoke: report: sent=$SENT 429=$R429 5xx=$R5XX neterr=$NETERR"
[[ -n "$SENT" && "$SENT" -gt 0 ]] || fail "report shows no requests sent"
[[ "$R5XX" == 0 ]] || fail "server returned $R5XX 5xx responses under load"
[[ "$NETERR" == 0 ]] || fail "$NETERR requests failed at the network layer"
[[ "$R429" -gt 0 ]] || fail "no 429s under burst — backpressure untested"

# The same sweep grid on both servers. On server 1 the children dedup
# onto jobs the load run already created (same specs by construction);
# server 2 computes everything fresh. The artifacts must not care.
GRID='{"workloads":["mcf","milc"],"schemes":["base","redhip"],"geometries":["smoke"],"seeds":[1,2],"refs_per_core":[4000000]}'

run_sweep() {
    local base=$1 out=$2
    local submit id state
    submit=$(curl -fsS -X POST "$base/v1/sweeps" \
        -H 'Content-Type: application/json' -d "$GRID") \
        || fail "sweep submission rejected at $base"
    id=$(echo "$submit" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
    [[ -n "$id" ]] || fail "no sweep id in response: $submit"
    state=""
    for _ in $(seq 1 300); do
        state=$(curl -fsS "$base/v1/sweeps/$id?children=false" \
            | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        case "$state" in
            done) break ;;
            failed|cancelled) fail "sweep $id at $base ended $state" ;;
        esac
        sleep 0.2
    done
    [[ "$state" == "done" ]] || fail "sweep $id at $base did not finish (state: $state)"
    curl -fsS "$base/v1/sweeps/$id/artifacts?format=text" > "$out" \
        || fail "artifact fetch failed at $base"
    [[ -s "$out" ]] || fail "empty artifacts at $base"
}

echo "loadgen-smoke: sweep on loadgen-warmed server 1"
run_sweep "$BASE1" "$BIN_DIR/artifacts-1.txt"
echo "loadgen-smoke: sweep on fresh server 2"
run_sweep "$BASE2" "$BIN_DIR/artifacts-2.txt"

diff "$BIN_DIR/artifacts-1.txt" "$BIN_DIR/artifacts-2.txt" \
    || fail "sweep artifacts differ between loadgen-warmed and fresh servers"
echo "loadgen-smoke: artifacts bit-identical across servers"

echo "loadgen-smoke: rerunning the sweep on server 2 (full dedup)"
run_sweep "$BASE2" "$BIN_DIR/artifacts-3.txt"
diff "$BIN_DIR/artifacts-2.txt" "$BIN_DIR/artifacts-3.txt" \
    || fail "sweep artifacts differ across identically-seeded runs"

echo "loadgen-smoke: checking sweep metric families on server 2"
METRICS=$(curl -fsS "$BASE2/metrics") || fail "/metrics scrape failed"
for M in \
    redhip_serve_sweeps_submitted_total \
    redhip_serve_sweeps_completed_total \
    redhip_serve_sweep_children_total \
    redhip_serve_sweep_children_deduped_total \
    redhip_serve_http_requests_total \
    redhip_serve_http_request_duration_seconds \
    redhip_serve_http_inflight; do
    echo "$METRICS" | grep -q "^# TYPE $M " || fail "metric family $M missing"
done
echo "$METRICS" | grep -q '^redhip_serve_sweeps_completed_total 2$' \
    || fail "sweeps_completed_total != 2 on server 2"
echo "$METRICS" | grep -Eq '^redhip_serve_sweep_children_deduped_total [1-9]' \
    || fail "rerun sweep deduped no children"

echo "loadgen-smoke: OK"
