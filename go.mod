module redhip

go 1.22
