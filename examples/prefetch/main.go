// Prefetch reproduces the Figure 14/15 interaction study on a
// streaming workload: the stride prefetcher buys latency at an energy
// cost, ReDHiP buys energy with a modest latency gain, and combined
// the speedups add while ReDHiP offsets the prefetch energy.
package main

import (
	"fmt"
	"log"

	"redhip"
)

func main() {
	cfg := redhip.ScaledConfig()
	cfg.RefsPerCore = 200_000
	const wl = "lbm" // streaming: highly prefetchable

	run := func(scheme redhip.Scheme, pf bool) *redhip.Result {
		r, err := redhip.RunWorkload(cfg.WithScheme(scheme).WithPrefetch(pf), wl, 1)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base := run(redhip.Base, false)
	variants := []struct {
		name string
		res  *redhip.Result
	}{
		{"SP only", run(redhip.Base, true)},
		{"ReDHiP only", run(redhip.ReDHiP, false)},
		{"SP+ReDHiP", run(redhip.ReDHiP, true)},
	}

	fmt.Printf("Stride prefetch x ReDHiP on 8x %s (vs base with neither)\n", wl)
	fmt.Println("mechanism     speedup   dynamic energy   prefetches (useful)")
	for _, v := range variants {
		pf := "-"
		if v.res.Prefetch.Issued > 0 {
			pf = fmt.Sprintf("%d (%.0f%%)", v.res.Prefetch.Issued,
				100*float64(v.res.Prefetch.Useful)/float64(v.res.Prefetch.Issued))
		}
		fmt.Printf("%-12s  %+6.1f%%   %6.1f%% of base   %s\n", v.name,
			100*v.res.Speedup(base), 100*v.res.DynamicEnergyRatio(base), pf)
	}
	fmt.Println()
	fmt.Println("Expected shape (paper Section V-C): SP alone is fastest on streams but")
	fmt.Println("costs energy; ReDHiP alone saves energy; together the speedups combine")
	fmt.Println("and the energy lands between the two.")
}
