// Quickstart: run one memory-bound workload (mcf) through the base
// hierarchy and through ReDHiP, and print the paper's headline metrics
// — speedup, dynamic energy saving, total energy saving — plus the
// predictor's accuracy.
package main

import (
	"fmt"
	"log"

	"redhip"
)

func main() {
	// The scaled configuration is Table I divided by 16 (geometry
	// ratios, the 0.78% table overhead and p-k = 6 all preserved), so
	// it warms up within laptop-scale trace lengths.
	cfg := redhip.ScaledConfig()

	base, err := redhip.RunWorkload(cfg.WithScheme(redhip.Base), "mcf", 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := redhip.RunWorkload(cfg.WithScheme(redhip.ReDHiP), "mcf", 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ReDHiP on 8x mcf (scaled Table I geometry)")
	fmt.Printf("  speedup:               %+.1f%%   (paper average: +8%%)\n", 100*res.Speedup(base))
	fmt.Printf("  dynamic energy saving: %.1f%%   (paper average: 61%%)\n",
		100*(1-res.DynamicEnergyRatio(base)))
	fmt.Printf("  total energy saving:   %.1f%%   (paper average: 22%%)\n",
		100*res.TotalEnergySaving(base))
	fmt.Printf("  predictor accuracy:    %.1f%% over %d L1 misses, %d recalibrations\n",
		100*res.Pred.Accuracy(), res.Pred.Lookups, res.Pred.Recalibrations)
	fmt.Printf("  false negatives:       %d (must be 0: predictions are conservative)\n",
		res.Pred.FalseNegative)
}
