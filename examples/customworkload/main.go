// Customworkload shows how to evaluate ReDHiP on your own access
// pattern: define a WorkloadProfile as a weighted mixture of components
// (hot set, streams, strided sweeps, pointer chases, Zipf), build
// per-core sources from it, and run any scheme. It also demonstrates
// capturing a trace to a file and replaying it.
package main

import (
	"bytes"
	"fmt"
	"log"

	"redhip"
)

func main() {
	// A synthetic "key-value store" profile: a hot working set of
	// index structures, Zipf-skewed value lookups over a large heap,
	// and a log writer streaming appends.
	profile := &redhip.WorkloadProfile{
		Name:      "kvstore",
		CPIVal:    2.5,
		WriteFrac: 0.3,
		MeanGap:   2,
		Components: []redhip.ComponentSpec{
			{Kind: redhip.KindHot, Weight: 0.78, SizeLog2: 14},             // 16 KB of hot index nodes
			{Kind: redhip.KindZipf, Weight: 0.08, SizeLog2: 24, Skew: 1.5}, // skewed value reads
			{Kind: redhip.KindStream, Weight: 0.08, SizeLog2: 28},          // log appends
			{Kind: redhip.KindChase, Weight: 0.06, SizeLog2: 29},           // cold overflow chains
		},
	}

	cfg := redhip.ScaledConfig()
	cfg.RefsPerCore = 150_000

	// One independent source per core (different seeds model different
	// server threads over the same store).
	srcs := make([]redhip.WorkloadSource, cfg.Cores)
	for i := range srcs {
		s, err := redhip.NewWorkload(profile, cfg.WorkloadScale, uint64(100+i))
		if err != nil {
			log.Fatal(err)
		}
		srcs[i] = s
	}

	base, err := redhip.Run(cfg.WithScheme(redhip.Base), mustSources(profile, &cfg, 100))
	if err != nil {
		log.Fatal(err)
	}
	res, err := redhip.Run(cfg.WithScheme(redhip.ReDHiP), srcs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ReDHiP on a custom key-value-store workload")
	fmt.Printf("  speedup:               %+.1f%%\n", 100*res.Speedup(base))
	fmt.Printf("  dynamic energy saving: %.1f%%\n", 100*(1-res.DynamicEnergyRatio(base)))
	fmt.Printf("  predictor accuracy:    %.1f%%\n", 100*res.Pred.Accuracy())

	// Traces round-trip through the compact binary format, so expensive
	// workload generation can be done once and replayed.
	one, err := redhip.NewWorkload(profile, cfg.WorkloadScale, 100)
	if err != nil {
		log.Fatal(err)
	}
	tr := redhip.CaptureTrace(one, 50_000)
	var buf bytes.Buffer
	if err := redhip.WriteTrace(&buf, tr); err != nil {
		log.Fatal(err)
	}
	encodedBytes := buf.Len() // reading drains the buffer; measure first
	back, err := redhip.ReadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	st := redhip.ComputeTraceStats(back.Records)
	fmt.Printf("\ntrace round trip: %d records, %.2f bytes each, footprint %.1f MiB\n",
		st.Refs, float64(encodedBytes)/float64(st.Refs), st.FootprintMiB)
}

// mustSources builds per-core sources with seeds offset from base.
func mustSources(p *redhip.WorkloadProfile, cfg *redhip.Config, seed uint64) []redhip.WorkloadSource {
	srcs := make([]redhip.WorkloadSource, cfg.Cores)
	for i := range srcs {
		s, err := redhip.NewWorkload(p, cfg.WorkloadScale, seed+uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		srcs[i] = s
	}
	return srcs
}
