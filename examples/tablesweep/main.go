// Tablesweep reproduces the Figure 11 methodology on a single
// workload: it sweeps the prediction-table size and the recalibration
// period and shows how accuracy (and therefore dynamic energy) responds
// — the central trade-off of the paper: a simpler table recalibrated
// often beats a fancier one, per bit of storage.
package main

import (
	"fmt"
	"log"

	"redhip"
)

func main() {
	base := redhip.ScaledConfig()
	base.RefsPerCore = 200_000

	baseline, err := redhip.RunWorkload(base.WithScheme(redhip.Base), "soplex", 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Prediction-table size sweep (soplex, recalibration fixed, overhead ignored)")
	fmt.Println("paper-scale size   accuracy   dynamic energy vs base")
	for _, paperSize := range []uint64{64 << 10, 256 << 10, 512 << 10, 2 << 20} {
		cfg := base.WithScheme(redhip.ReDHiP)
		cfg.PTBytes = paperSize / cfg.WorkloadScale
		cfg.IgnorePredictionOverhead = true
		res, err := redhip.RunWorkload(cfg, "soplex", 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%14s   %7.1f%%   %6.1f%%\n", size(paperSize),
			100*res.Pred.Accuracy(), 100*res.DynamicNJ()/baseline.DynamicNJ())
	}

	fmt.Println()
	fmt.Println("Recalibration period sweep (soplex, 512K table, overhead ignored)")
	fmt.Println("period (L1 misses)   accuracy   dynamic energy vs base")
	for _, paperPeriod := range []uint64{1, 100_000, 1_000_000, 10_000_000, 0} {
		cfg := base.WithScheme(redhip.ReDHiP)
		cfg.IgnorePredictionOverhead = true
		cfg.RecalPeriod = paperPeriod / cfg.WorkloadScale
		if paperPeriod > 0 && cfg.RecalPeriod == 0 {
			cfg.RecalPeriod = 1
		}
		res, err := redhip.RunWorkload(cfg, "soplex", 1)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d", paperPeriod)
		if paperPeriod == 0 {
			label = "never"
		}
		fmt.Printf("%18s   %7.1f%%   %6.1f%%\n", label,
			100*res.Pred.Accuracy(), 100*res.DynamicNJ()/baseline.DynamicNJ())
	}
}

func size(b uint64) string {
	if b >= 1<<20 {
		return fmt.Sprintf("%dM", b>>20)
	}
	return fmt.Sprintf("%dK", b>>10)
}
