// Papergeometry runs the *exact* Table I configuration — 32K/256K/4M
// private levels, a 64 MB shared L4, the 512 KB prediction table with
// p = 22 and recalibration every 1M L1 misses — on unscaled workloads.
// The paper simulates 500M references per core; this example runs a
// much shorter slice, so the 64 MB LLC is still warming up and the
// absolute hit rates are below steady state. Use it to sanity-check
// the full-size hardware parameters; use ScaledConfig for calibrated
// steady-state results.
package main

import (
	"fmt"
	"log"
	"time"

	"redhip"
)

func main() {
	cfg := redhip.PaperConfig()
	cfg.RefsPerCore = 2_000_000 // a short slice of the paper's 500M

	fmt.Printf("Table I geometry: L1 %dK, L2 %dK, L3 %dM, L4 %dM, PT %dK (p-k preserved)\n",
		32, 256, 4, 64, 512)
	start := time.Now()
	base, err := redhip.RunWorkload(cfg.WithScheme(redhip.Base), "soplex", 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := redhip.RunWorkload(cfg.WithScheme(redhip.ReDHiP), "soplex", 1)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("simulated %d references on 8 cores in %v (%.1f Mref/s)\n",
		base.Refs+res.Refs, elapsed.Round(time.Millisecond),
		float64(base.Refs+res.Refs)/elapsed.Seconds()/1e6)
	fmt.Printf("recalibration: %d sweeps, %d stall cycles each (paper: 16K cycles at 4 banks)\n",
		res.Pred.Recalibrations, safeDiv(res.Pred.RecalCycles, res.Pred.Recalibrations))
	fmt.Printf("speedup %+.1f%%, dynamic saving %.1f%%, accuracy %.1f%%, false negatives %d\n",
		100*res.Speedup(base), 100*(1-res.DynamicEnergyRatio(base)),
		100*res.Pred.Accuracy(), res.Pred.FalseNegative)
	fmt.Println("note: short traces leave the 64 MB LLC cold; see ScaledConfig for calibrated runs")
}

func safeDiv(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	return a / b
}
