package redhip_test

import (
	"testing"

	"redhip"
)

func TestPublicConfigs(t *testing.T) {
	for _, cfg := range []redhip.Config{redhip.PaperConfig(), redhip.ScaledConfig(), redhip.SmokeConfig()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("config invalid: %v", err)
		}
	}
	if len(redhip.Workloads()) != 11 {
		t.Error("workload list")
	}
	if len(redhip.Schemes()) != 5 {
		t.Error("scheme list")
	}
}

func TestRunWorkloadEndToEnd(t *testing.T) {
	cfg := redhip.SmokeConfig()
	cfg.RefsPerCore = 10_000
	base, err := redhip.RunWorkload(cfg.WithScheme(redhip.Base), "mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := redhip.RunWorkload(cfg.WithScheme(redhip.ReDHiP), "mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pred.FalseNegative != 0 {
		t.Fatal("false negatives")
	}
	if res.DynamicNJ() >= base.DynamicNJ() {
		t.Fatal("no energy saving on memory-bound workload")
	}
}

func TestRunWorkloadUnknown(t *testing.T) {
	if _, err := redhip.RunWorkload(redhip.SmokeConfig(), "nope", 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPredictionTablePublicAPI(t *testing.T) {
	tb, err := redhip.NewPredictionTable(4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := redhip.Addr(0x4000).Block()
	tb.Set(b)
	if !tb.PredictPresent(b) {
		t.Fatal("set block absent")
	}
	forCache, err := redhip.NewPredictionTableForCache(64<<20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if forCache.SizeBytes() != 512<<10 {
		t.Fatalf("0.78%% rule: got %d", forCache.SizeBytes())
	}
}

func TestCustomWorkloadPublicAPI(t *testing.T) {
	p := &redhip.WorkloadProfile{
		Name: "custom", CPIVal: 2, WriteFrac: 0.3, MeanGap: 2,
		Components: []redhip.ComponentSpec{
			{Kind: redhip.KindHot, Weight: 0.8, SizeLog2: 14},
			{Kind: redhip.KindChase, Weight: 0.2, SizeLog2: 24},
		},
	}
	src, err := redhip.NewWorkload(p, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr := redhip.CaptureTrace(src, 1000)
	if len(tr.Records) != 1000 {
		t.Fatal("capture length")
	}
	st := redhip.ComputeTraceStats(tr.Records)
	if st.Refs != 1000 {
		t.Fatal("stats refs")
	}
	// Replay through the simulator.
	cfg := redhip.SmokeConfig()
	cfg.Cores = 1
	cfg.RefsPerCore = 1000
	res, err := redhip.Run(cfg, []redhip.WorkloadSource{redhip.ReplayTrace(tr)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Refs != 1000 {
		t.Fatalf("replayed %d refs", res.Refs)
	}
}

func TestExperimentsPublicAPI(t *testing.T) {
	cfg := redhip.SmokeConfig()
	cfg.RefsPerCore = 5_000
	ex, err := redhip.NewExperiments(redhip.ExperimentOptions{
		Base:      cfg,
		Workloads: []string{"lbm"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ex.Fig6Speedup()
	if err != nil {
		t.Fatal(err)
	}
	if f.Table.String() == "" || f.Table.CSV() == "" || f.Table.Markdown() == "" {
		t.Fatal("empty renderings")
	}
}
